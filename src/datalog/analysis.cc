#include "src/datalog/analysis.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace dlcirc {

int CountIdbBodyAtoms(const Program& program, const Rule& rule) {
  std::vector<bool> idb = program.IdbMask();
  int count = 0;
  for (const Atom& a : rule.body) {
    if (idb[a.pred]) ++count;
  }
  return count;
}

bool IsChainRule(const Program& program, const Rule& rule) {
  (void)program;
  // Head must be binary over two distinct variables.
  if (rule.head.args.size() != 2) return false;
  if (!rule.head.args[0].IsVar() || !rule.head.args[1].IsVar()) return false;
  if (rule.head.args[0].id == rule.head.args[1].id) return false;
  if (rule.body.empty()) return false;
  // Body must be a path of binary atoms x -> z1 -> ... -> y with distinct
  // variables.
  uint32_t expected = rule.head.args[0].id;
  std::unordered_set<uint32_t> seen = {expected};
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& a = rule.body[i];
    if (a.args.size() != 2) return false;
    if (!a.args[0].IsVar() || !a.args[1].IsVar()) return false;
    if (a.args[0].id != expected) return false;
    uint32_t next = a.args[1].id;
    bool is_last = (i + 1 == rule.body.size());
    if (is_last) {
      if (next != rule.head.args[1].id) return false;
    } else {
      if (!seen.insert(next).second) return false;  // vars must be distinct
      if (next == rule.head.args[1].id) return false;
    }
    expected = next;
  }
  return true;
}

bool IsConnectedRule(const Rule& rule) {
  if (rule.body.empty()) return true;
  // Collect variables and union-find over atoms.
  std::unordered_map<uint32_t, uint32_t> parent;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t v) -> uint32_t {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  auto ensure = [&](uint32_t v) {
    if (!parent.count(v)) parent[v] = v;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    ensure(a);
    ensure(b);
    parent[find(a)] = find(b);
  };
  for (const Atom& a : rule.body) {
    uint32_t first_var = 0;
    bool has_first = false;
    for (const Term& t : a.args) {
      if (!t.IsVar()) continue;
      ensure(t.id);
      if (!has_first) {
        first_var = t.id;
        has_first = true;
      } else {
        unite(first_var, t.id);
      }
    }
  }
  if (parent.empty()) return true;  // no variables at all
  // Head variables must be present in the body graph (safety gives this) and
  // everything must be one component.
  constexpr uint32_t kNoRoot = 0xffffffffu;
  uint32_t root = kNoRoot;
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) {
      if (!t.IsVar()) continue;
      uint32_t r = find(t.id);
      if (root == kNoRoot) {
        root = r;
      } else if (r != root) {
        return false;
      }
    }
  }
  for (const Term& t : rule.head.args) {
    if (t.IsVar() && !parent.count(t.id)) return false;
  }
  return true;
}

ProgramAnalysis Analyze(const Program& program) {
  ProgramAnalysis out;
  out.idb_mask = program.IdbMask();

  out.is_linear = true;
  for (const Rule& r : program.rules) {
    if (CountIdbBodyAtoms(program, r) > 1) out.is_linear = false;
  }

  out.is_monadic = true;
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (out.idb_mask[p] && program.arities[p] != 1) out.is_monadic = false;
  }

  out.is_basic_chain = true;
  for (const Rule& r : program.rules) {
    if (CountIdbBodyAtoms(program, r) == 0) continue;  // initialization rule
    if (!IsChainRule(program, r)) out.is_basic_chain = false;
  }
  // Chain programs additionally require initialization rules to be chains.
  if (out.is_basic_chain) {
    for (const Rule& r : program.rules) {
      if (!r.body.empty() && !IsChainRule(program, r)) out.is_basic_chain = false;
    }
  }

  out.is_connected = true;
  for (const Rule& r : program.rules) {
    if (!IsConnectedRule(r)) out.is_connected = false;
  }

  // Predicate dependency graph: edge q -> p when q occurs in a body of a
  // rule with head p. A predicate is recursive if it lies on a cycle.
  size_t n = program.num_preds();
  std::vector<std::vector<uint32_t>> adj(n);
  for (const Rule& r : program.rules) {
    for (const Atom& a : r.body) adj[a.pred].push_back(r.head.pred);
  }
  // Reachability-based cycle detection (n is tiny).
  out.recursive_pred.assign(n, false);
  for (size_t s = 0; s < n; ++s) {
    std::vector<bool> vis(n, false);
    std::vector<uint32_t> stack(adj[s].begin(), adj[s].end());
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      if (v == s) {
        out.recursive_pred[s] = true;
        break;
      }
      if (vis[v]) continue;
      vis[v] = true;
      for (uint32_t w : adj[v]) stack.push_back(w);
    }
  }
  out.is_recursive =
      std::any_of(out.recursive_pred.begin(), out.recursive_pred.end(),
                  [](bool b) { return b; });
  return out;
}

}  // namespace dlcirc
