// Static program analyses used throughout the paper's classification:
// linearity (Section 2.1), monadicity, chain-rule shape (Section 5),
// connectedness of rule variable graphs (Section 6.2), and recursiveness via
// the predicate dependency graph.
#ifndef DLCIRC_DATALOG_ANALYSIS_H_
#define DLCIRC_DATALOG_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "src/datalog/ast.h"

namespace dlcirc {

struct ProgramAnalysis {
  std::vector<bool> idb_mask;        ///< per predicate
  bool is_linear = false;            ///< every rule has <= 1 IDB body atom
  bool is_monadic = false;           ///< every IDB has arity 1
  bool is_basic_chain = false;       ///< recursive rules are chain rules (Sec 5)
  bool is_connected = false;         ///< every rule's variable graph connected
  bool is_recursive = false;         ///< some IDB depends on itself (via SCC)
  std::vector<bool> recursive_pred;  ///< per predicate: in a dependency cycle
};

/// Runs all analyses.
ProgramAnalysis Analyze(const Program& program);

/// True iff `rule` is a chain rule (Section 5):
///   P(x,y) :- Q0(x,z1), Q1(z1,z2), ..., Qk(zk,y)
/// with all predicates binary and x, y, z1..zk pairwise distinct variables.
/// Rules with a single body atom P(x,y) :- Q(x,y) also qualify.
bool IsChainRule(const Program& program, const Rule& rule);

/// True iff the rule's variable graph (vars adjacent when co-occurring in an
/// atom) is connected and contains every head variable (Section 6.2).
bool IsConnectedRule(const Rule& rule);

/// Number of IDB atoms in the rule body.
int CountIdbBodyAtoms(const Program& program, const Rule& rule);

}  // namespace dlcirc

#endif  // DLCIRC_DATALOG_ANALYSIS_H_
