// Datalog AST (paper Section 2.1).
//
// A Program is a set of rules head :- body over interned predicate, variable
// and constant names. EDB predicates are those never appearing in a rule
// head; the target IDB designates the output (predicate I/O convention).
#ifndef DLCIRC_DATALOG_AST_H_
#define DLCIRC_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/interner.h"

namespace dlcirc {

/// A term is a variable or a constant, identified by an interned id.
struct Term {
  enum class Kind : uint8_t { kVar, kConst };
  Kind kind;
  uint32_t id;

  static Term Var(uint32_t id) { return {Kind::kVar, id}; }
  static Term Const(uint32_t id) { return {Kind::kConst, id}; }
  bool IsVar() const { return kind == Kind::kVar; }
  bool operator==(const Term& o) const { return kind == o.kind && id == o.id; }
};

/// A predicate applied to terms.
struct Atom {
  uint32_t pred;
  std::vector<Term> args;
  bool operator==(const Atom& o) const { return pred == o.pred && args == o.args; }
};

/// head :- body[0], ..., body[k-1].  An empty body makes the rule a ground
/// fact (only allowed when all head arguments are constants).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  /// Source position of the rule's head token (1-based; 0 = not from text,
  /// e.g. rules synthesized from a CFG). Carried so post-parse validation
  /// and the linter (src/analysis) can point at the offending rule.
  int line = 0;
  int col = 0;
};

/// A parsed Datalog program. Names are interned per kind; `arities` is
/// indexed by predicate id. The program does not own any data (EDB facts
/// live in a Database).
struct Program {
  Interner preds;
  Interner vars;
  Interner consts;
  std::vector<uint32_t> arities;
  std::vector<Rule> rules;
  /// Output predicate (predicate I/O convention, Section 2.1).
  uint32_t target_pred = 0;

  size_t num_preds() const { return preds.size(); }

  /// idb_mask[p] is true iff predicate p occurs in some rule head.
  std::vector<bool> IdbMask() const;

  /// True iff the rule at `rule_idx` has no IDB atoms in its body
  /// (an initialization rule, Section 2.1).
  bool IsInitializationRule(size_t rule_idx) const;

  std::string AtomToString(const Atom& atom) const;
  std::string RuleToString(const Rule& rule) const;
  std::string ToString() const;
};

}  // namespace dlcirc

#endif  // DLCIRC_DATALOG_AST_H_
