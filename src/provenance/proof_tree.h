// Tight proof tree enumeration (paper Definitions 2.2, 2.4 and Section 6.1).
//
// Enumerates all tight proof trees of an IDB fact over the grounded program
// (no fact repeats along a root-to-leaf path) and returns:
//   * the canonical provenance polynomial (monomials = leaf multisets,
//     absorption-reduced) — the ground truth every circuit construction is
//     checked against (Proposition 2.4), and
//   * fringe statistics (leaf counts per tree) for the polynomial fringe
//     property of Definition 6.1.
// Enumeration is exponential in general; hard budgets make truncation
// explicit rather than silent.
#ifndef DLCIRC_PROVENANCE_PROOF_TREE_H_
#define DLCIRC_PROVENANCE_PROOF_TREE_H_

#include <cstdint>
#include <vector>

#include "src/datalog/grounding.h"
#include "src/semiring/provenance_poly.h"

namespace dlcirc {

struct ProvenanceLimits {
  /// Maximum number of (pre-absorption) monomials to materialize.
  uint64_t max_trees = 200000;
};

struct TightProvenanceResult {
  /// Canonical provenance polynomial (absorption-reduced).
  Poly poly;
  /// Number of tight proof trees enumerated (== pre-absorption monomials).
  uint64_t num_trees = 0;
  /// True if enumeration hit the budget; poly is then a lower approximation.
  bool truncated = false;
  /// Fringe statistics over enumerated trees (0 when there are none).
  uint64_t min_leaves = 0;
  uint64_t max_leaves = 0;
};

/// Enumerates tight proof trees of IDB fact id `fact`.
TightProvenanceResult EnumerateTightProvenance(const GroundedProgram& g,
                                               uint32_t fact,
                                               ProvenanceLimits limits = {});

}  // namespace dlcirc

#endif  // DLCIRC_PROVENANCE_PROOF_TREE_H_
