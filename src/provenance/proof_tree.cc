#include "src/provenance/proof_tree.h"

#include <algorithm>

#include "src/util/check.h"

namespace dlcirc {

namespace {

class Enumerator {
 public:
  Enumerator(const GroundedProgram& g, uint64_t budget)
      : g_(g), budget_(budget), on_path_(g.num_idb_facts(), false) {}

  // Returns leaf-multisets of all tight proof trees of `fact` whose internal
  // facts avoid the current path. Appends at most the remaining budget.
  std::vector<Monomial> Enumerate(uint32_t fact) {
    std::vector<Monomial> out;
    if (truncated_) return out;
    on_path_[fact] = true;
    for (uint32_t rid : g_.RulesOfHead(fact)) {
      const GroundRule& rule = g_.rules()[rid];
      bool viable = true;
      for (uint32_t b : rule.body_idbs) {
        if (on_path_[b]) {
          viable = false;
          break;
        }
      }
      if (!viable) continue;
      // Seed with the rule's EDB leaves.
      Monomial edb_leaves(rule.body_edbs.begin(), rule.body_edbs.end());
      std::sort(edb_leaves.begin(), edb_leaves.end());
      std::vector<Monomial> partial = {edb_leaves};
      for (uint32_t b : rule.body_idbs) {
        std::vector<Monomial> sub = Enumerate(b);
        if (sub.empty()) {
          partial.clear();  // no tight subtree for this body fact
          break;
        }
        std::vector<Monomial> next;
        next.reserve(partial.size() * sub.size());
        for (const Monomial& p : partial) {
          for (const Monomial& s : sub) {
            if (count_ + next.size() + out.size() >= budget_) {
              truncated_ = true;
              break;
            }
            next.push_back(MonomialTimes(p, s));
          }
          if (truncated_) break;
        }
        partial = std::move(next);
        if (truncated_) break;
      }
      out.insert(out.end(), partial.begin(), partial.end());
      if (truncated_) break;
    }
    on_path_[fact] = false;
    return out;
  }

  uint64_t count_ = 0;  // trees committed at the top level
  bool truncated_ = false;

 private:
  const GroundedProgram& g_;
  uint64_t budget_;
  std::vector<bool> on_path_;
};

}  // namespace

TightProvenanceResult EnumerateTightProvenance(const GroundedProgram& g,
                                               uint32_t fact,
                                               ProvenanceLimits limits) {
  DLCIRC_CHECK_LT(fact, g.num_idb_facts());
  Enumerator e(g, limits.max_trees);
  std::vector<Monomial> trees = e.Enumerate(fact);
  TightProvenanceResult r;
  r.num_trees = trees.size();
  r.truncated = e.truncated_;
  if (!trees.empty()) {
    r.min_leaves = r.max_leaves = trees[0].size();
    for (const Monomial& m : trees) {
      r.min_leaves = std::min<uint64_t>(r.min_leaves, m.size());
      r.max_leaves = std::max<uint64_t>(r.max_leaves, m.size());
    }
  }
  r.poly = AbsorbReduce(std::move(trees));
  return r;
}

}  // namespace dlcirc
