// Program linter: findings a parse cannot reject but a user should hear
// about before paying for a compile.
//
//   lint.unused-predicate      derived but feeds nothing (warning)
//   lint.underivable-predicate no rule chain can ever produce a fact (warning)
//   lint.duplicate-rule        structural duplicate up to variable renaming
//                              (warning; first occurrence named)
//   lint.subsumed-rule         theta-subsumed by a more general rule
//                              (warning; dropping it is provenance-neutral
//                              only over plus-idempotent semirings — noted)
//   lint.grounded-forcing      a single rule whose shape defeats every
//                              sub-grounded construction at once (warning,
//                              theorem-named)
//   lint.chain-language        Section 5 dichotomy advisory for basic chain
//                              programs: finite language (Theorem 5.8
//                              circuit exists) vs TC-hard (note)
//   lint.route / lint.route-rejected
//                              the cost-based planner's decision and its
//                              rejected candidates, as notes (needs an EDB;
//                              LintRouting only)
//
// LintProgram needs only the parsed program; LintRouting additionally takes
// the planner context of a concrete (program, EDB) pair and a semiring, and
// narrates PlanRoute's decision. `dlcirc check` runs the first always and
// the second when given facts.
#ifndef DLCIRC_ANALYSIS_LINT_H_
#define DLCIRC_ANALYSIS_LINT_H_

#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/datalog/ast.h"
#include "src/pipeline/planner.h"

namespace dlcirc {
namespace analysis {

/// Instance-independent lints over the program alone. Deterministic: one
/// pass per lint in rule order, so repeated runs render byte-identically.
std::vector<Diagnostic> LintProgram(const Program& program);

/// Planner-routing notes for one (program, EDB, semiring) triple.
std::vector<Diagnostic> LintRouting(const pipeline::PlannerContext& context,
                                    const pipeline::SemiringTraits& traits);

}  // namespace analysis
}  // namespace dlcirc

#endif  // DLCIRC_ANALYSIS_LINT_H_
