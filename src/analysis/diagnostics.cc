#include "src/analysis/diagnostics.h"

#include <cstdio>
#include <sstream>

namespace dlcirc {
namespace analysis {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

DiagnosticCounts Count(const std::vector<Diagnostic>& diagnostics) {
  DiagnosticCounts counts;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError:
        ++counts.errors;
        break;
      case Severity::kWarning:
        ++counts.warnings;
        break;
      case Severity::kNote:
        ++counts.notes;
        break;
    }
  }
  return counts;
}

std::string RenderTextLine(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << SeverityName(diagnostic.severity) << "[" << diagnostic.code << "]";
  if (diagnostic.span.known()) {
    out << " line " << diagnostic.span.line;
    if (diagnostic.span.col > 0) out << ", col " << diagnostic.span.col;
  }
  out << ": " << diagnostic.message;
  return out.str();
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << RenderTextLine(d) << "\n";
    if (!d.note.empty()) out << "  note: " << d.note << "\n";
  }
  return out.str();
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "{\"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out << ", ";
    out << "{\"code\": \"" << JsonEscape(d.code) << "\", \"severity\": \""
        << SeverityName(d.severity) << "\"";
    if (d.span.known()) {
      out << ", \"line\": " << d.span.line;
      if (d.span.col > 0) out << ", \"col\": " << d.span.col;
    }
    out << ", \"message\": \"" << JsonEscape(d.message) << "\"";
    if (!d.note.empty()) out << ", \"note\": \"" << JsonEscape(d.note) << "\"";
    out << "}";
  }
  const DiagnosticCounts counts = Count(diagnostics);
  out << "], \"errors\": " << counts.errors
      << ", \"warnings\": " << counts.warnings << "}";
  return out.str();
}

int ExitCode(const std::vector<Diagnostic>& diagnostics) {
  const DiagnosticCounts counts = Count(diagnostics);
  if (counts.errors > 0) return 1;
  if (counts.warnings > 0) return 2;
  return 0;
}

std::string RenderLegacy(const Diagnostic& diagnostic) {
  if (!diagnostic.span.known()) return diagnostic.message;
  std::string out = "line " + std::to_string(diagnostic.span.line);
  if (diagnostic.span.col > 0) {
    out += ", col " + std::to_string(diagnostic.span.col);
  }
  return out + ": " + diagnostic.message;
}

}  // namespace analysis
}  // namespace dlcirc
