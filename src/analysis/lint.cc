#include "src/analysis/lint.h"

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/datalog/analysis.h"
#include "src/pipeline/chain_planner.h"

namespace dlcirc {
namespace analysis {

namespace {

Span RuleSpan(const Rule& rule) { return {rule.line, rule.col}; }

/// Atom rendered with variables renamed to first-occurrence indices, so two
/// rules that differ only in variable names canonicalize identically. `next`
/// and `canon` persist across one rule's atoms (head first).
std::string CanonicalAtom(const Atom& atom,
                          std::unordered_map<uint32_t, uint32_t>& canon,
                          uint32_t& next) {
  std::string out = "p" + std::to_string(atom.pred) + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    if (i > 0) out += ",";
    if (t.IsVar()) {
      auto [it, inserted] = canon.emplace(t.id, next);
      if (inserted) ++next;
      out += "v" + std::to_string(it->second);
    } else {
      out += "c" + std::to_string(t.id);
    }
  }
  out += ")";
  return out;
}

struct CanonicalRule {
  std::string head;
  std::vector<std::string> body;       ///< in rule order (duplicate check)
  std::set<std::string> body_set;      ///< as a set (subsumption check)
  std::string whole;                   ///< head + ordered body, one string
};

CanonicalRule Canonicalize(const Rule& rule) {
  CanonicalRule c;
  std::unordered_map<uint32_t, uint32_t> canon;
  uint32_t next = 0;
  c.head = CanonicalAtom(rule.head, canon, next);
  c.whole = c.head + ":-";
  for (const Atom& a : rule.body) {
    c.body.push_back(CanonicalAtom(a, canon, next));
    c.body_set.insert(c.body.back());
    c.whole += c.body.back() + ";";
  }
  return c;
}

/// Predicates that can derive at least one fact: EDB predicates trivially,
/// IDB predicates via the least fixpoint of "some rule's body is fully
/// derivable" (the standard emptiness test, values ignored).
std::vector<bool> DerivablePredicates(const Program& program,
                                      const std::vector<bool>& idb_mask) {
  std::vector<bool> derivable(program.num_preds(), false);
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (!idb_mask[p]) derivable[p] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      if (derivable[rule.head.pred]) continue;
      bool all = true;
      for (const Atom& a : rule.body) {
        if (!derivable[a.pred]) {
          all = false;
          break;
        }
      }
      if (all) {
        derivable[rule.head.pred] = true;
        changed = true;
      }
    }
  }
  return derivable;
}

}  // namespace

std::vector<Diagnostic> LintProgram(const Program& program) {
  std::vector<Diagnostic> out;
  const ProgramAnalysis pa = Analyze(program);

  // Per-predicate bookkeeping: body occurrences and the first defining rule
  // (for spans on predicate-level findings).
  std::vector<bool> used_in_body(program.num_preds(), false);
  std::vector<int> first_head_rule(program.num_preds(), -1);
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    if (first_head_rule[rule.head.pred] < 0) {
      first_head_rule[rule.head.pred] = static_cast<int>(r);
    }
    for (const Atom& a : rule.body) used_in_body[a.pred] = true;
  }

  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (!pa.idb_mask[p] || p == program.target_pred || used_in_body[p]) {
      continue;
    }
    const Rule& def = program.rules[first_head_rule[p]];
    out.push_back({"lint.unused-predicate", Severity::kWarning, RuleSpan(def),
                   "predicate " + program.preds.Name(static_cast<uint32_t>(p)) +
                       " is derived but feeds neither the target nor any "
                       "rule body",
                   "its rules and gates are dead weight in every plan"});
  }

  const std::vector<bool> derivable = DerivablePredicates(program, pa.idb_mask);
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (!pa.idb_mask[p] || derivable[p]) continue;
    Span span;
    if (first_head_rule[p] >= 0) {
      span = RuleSpan(program.rules[first_head_rule[p]]);
    }
    out.push_back({"lint.underivable-predicate", Severity::kWarning, span,
                   "no rule chain can ever derive a fact for predicate " +
                       program.preds.Name(static_cast<uint32_t>(p)),
                   "every rule for it depends (transitively) on itself with "
                   "no base case"});
  }

  // Duplicate and subsumed rules, both modulo variable renaming.
  std::vector<CanonicalRule> canon;
  canon.reserve(program.rules.size());
  for (const Rule& rule : program.rules) canon.push_back(Canonicalize(rule));
  std::unordered_map<std::string, size_t> first_seen;
  std::vector<bool> is_duplicate(program.rules.size(), false);
  for (size_t r = 0; r < program.rules.size(); ++r) {
    auto [it, inserted] = first_seen.emplace(canon[r].whole, r);
    if (inserted) continue;
    is_duplicate[r] = true;
    const Rule& original = program.rules[it->second];
    out.push_back({"lint.duplicate-rule", Severity::kWarning,
                   RuleSpan(program.rules[r]),
                   "rule " + program.RuleToString(program.rules[r]) +
                       " duplicates an earlier rule (up to variable renaming)",
                   "first occurrence" +
                       (original.line > 0
                            ? " at line " + std::to_string(original.line)
                            : std::string()) +
                       ": " + program.RuleToString(original)});
  }
  for (size_t r = 0; r < program.rules.size(); ++r) {
    if (is_duplicate[r]) continue;
    for (size_t s = 0; s < program.rules.size(); ++s) {
      if (s == r || canon[s].head != canon[r].head) continue;
      if (canon[s].body_set.size() >= canon[r].body_set.size()) continue;
      bool subset = true;
      for (const std::string& a : canon[s].body_set) {
        if (!canon[r].body_set.count(a)) {
          subset = false;
          break;
        }
      }
      if (!subset) continue;
      out.push_back(
          {"lint.subsumed-rule", Severity::kWarning,
           RuleSpan(program.rules[r]),
           "rule " + program.RuleToString(program.rules[r]) +
               " is subsumed by the more general rule " +
               program.RuleToString(program.rules[s]),
           "dropping it preserves the derived facts, and provenance too "
           "over plus-idempotent semirings (duplicate monomials collapse); "
           "over other semirings it changes coefficients"});
      break;
    }
  }

  // A single rule can disqualify every sub-grounded construction: two IDB
  // body atoms defeat linearity (UVG, Theorem 6.2) and a recursive non-chain
  // shape defeats the Section 5 family (Theorems 5.6-5.8) plus the
  // chain-exact bounds of Proposition 5.5 in one stroke.
  for (const Rule& rule : program.rules) {
    if (!pa.recursive_pred[rule.head.pred]) continue;
    if (CountIdbBodyAtoms(program, rule) < 2) continue;
    if (IsChainRule(program, rule)) continue;
    out.push_back(
        {"lint.grounded-forcing", Severity::kWarning, RuleSpan(rule),
         "rule " + program.RuleToString(rule) +
             " forces the grounded construction (Theorem 3.1)",
         "two IDB body atoms break linearity (UVG, Theorem 6.2) and the "
         "non-chain shape breaks the Section 5 constructions "
         "(Theorems 5.6-5.8); only the grounded route remains"});
  }

  // Section 5 dichotomy advisory for basic chain programs.
  if (pa.is_basic_chain && pa.is_recursive) {
    Result<pipeline::ChainRoute> route_r = pipeline::PlanChainRoute(program);
    if (route_r.ok()) {
      const pipeline::ChainRoute& route = route_r.value();
      out.push_back({"lint.chain-language", Severity::kNote, {},
                     route.finite
                         ? "basic chain program with a finite language: a "
                           "circuit of size O(m), depth O(log n) exists "
                           "(Theorem 5.8)"
                         : "basic chain program with an infinite language: "
                           "transitive-closure-hard (Theorem 5.9), expect "
                           "the layered constructions",
                     route.reason});
    }
  }

  return out;
}

std::vector<Diagnostic> LintRouting(const pipeline::PlannerContext& context,
                                    const pipeline::SemiringTraits& traits) {
  std::vector<Diagnostic> out;
  const pipeline::RouteDecision decision = pipeline::PlanRoute(context, traits);
  out.push_back({"lint.route", Severity::kNote, {},
                 "planner routes semiring " + traits.name + " to " +
                     std::string(pipeline::ConstructionName(
                         decision.construction)),
                 decision.reason});
  for (const pipeline::PlanCandidate& c : decision.candidates) {
    if (c.construction == decision.construction) continue;
    out.push_back({c.applicable ? "lint.route-candidate"
                                : "lint.route-rejected",
                   Severity::kNote, {},
                   std::string(pipeline::ConstructionName(c.construction)) +
                       (c.applicable ? ": applicable but outscored"
                                     : ": not applicable"),
                   c.reason});
  }
  return out;
}

}  // namespace analysis
}  // namespace dlcirc
