// Unified plan/circuit verifier: every structural invariant the evaluator
// relies on, checked as recoverable diagnostics instead of scattered
// CHECK-aborts and ad-hoc boolean folds.
//
// Three consumers share these checks:
//   1. Debug builds re-verify the circuit after every optimizer pass
//      (Session::Compile wires a PassObserver naming the pass that broke an
//      invariant).
//   2. serve::LoadPlan verifies snapshot bytes before EvalPlan::FromParts —
//      mmap'd untrusted data must never reach the evaluator with an
//      out-of-bounds slot, and a corrupted file is rejected with a
//      diagnostic naming the violated invariant (fuzz-tested in
//      tests/snapshot_fuzz_test.cc).
//   3. `dlcirc check --snapshot FILE` reports the same findings to users.
//
// Every check is a single O(gates + edges) forward pass. Plan verification
// first runs a fused silent scan (one pass folds the arena, layer, and CSR
// inverse checks together); only a plan that fails it takes the slower
// multi-pass reporting path, so the common clean case pays one streaming
// pass. LoadPlan additionally memoizes verification per file identity +
// payload checksum and passes errors_only, which the E20 bench measures
// (steady-state verify-on-load < 5% of snapshot load time). Findings carry codes
// verify.* with the invariant named in the message; structural errors are
// Severity::kError, advisory findings (dead slots outside every output
// cone) are kWarning. Reporting is capped (kMaxFindings) so a garbage blob
// cannot produce megabytes of diagnostics.
#ifndef DLCIRC_ANALYSIS_VERIFY_H_
#define DLCIRC_ANALYSIS_VERIFY_H_

#include <cstdint>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/circuit/circuit.h"
#include "src/eval/evaluator.h"

namespace dlcirc {
namespace pipeline {
struct PlanKey;
struct CompiledPlan;
}  // namespace pipeline

namespace analysis {

/// Findings per Verify* call are capped here; a final note diagnostic
/// reports the truncation.
inline constexpr size_t kMaxFindings = 32;

/// Knobs for plan verification. errors_only skips the advisory sweeps
/// (currently the output-cone reachability warning) — serve::LoadPlan gates
/// on errors alone, and the cone sweep is a second full pass over the arena
/// it does not need on the warm-start latency path.
struct VerifyOptions {
  bool errors_only = false;
};

/// Circuit arena well-formedness over raw parts (what a snapshot decoder
/// holds before it dares construct a Circuit): children strictly precede
/// parents, input variable ids < num_vars, outputs in range.
std::vector<Diagnostic> VerifyCircuitParts(const std::vector<Gate>& gates,
                                           const std::vector<GateId>& outputs,
                                           uint32_t num_vars);

/// The same checks on a built Circuit.
std::vector<Diagnostic> VerifyCircuit(const Circuit& circuit);

/// EvalPlan invariants over raw serialized parts (again: callable before
/// FromParts, whose DLCIRC_CHECKs would abort the process):
///   - layer_starts is a valid partition: size >= 2, starts at 0, ends at
///     num_slots, non-decreasing;
///   - layer_of is the exact inverse of layer_starts;
///   - every kPlus/kTimes child is an earlier slot in a strictly lower
///     layer; every kInput variable id is in range;
///   - output_slots / dependents / var_input_slots are in range;
///   - the CSR dependents index is the exact inverse of the forward edges
///     (same multiset per slot, in slot order — the order EvalPlan::Build
///     emits), and dep_starts is a consistent CSR offset array;
///   - var_starts/var_input_slots is the exact CSR inverse of the kInput
///     gates (each listed slot is an input of the matching variable);
///   - (warning) every slot is reachable from some output — dead slots are
///     evaluated for nothing but are not unsound (skipped under
///     options.errors_only).
std::vector<Diagnostic> VerifyParts(const eval::EvalPlan::Parts& parts,
                                    const VerifyOptions& options = {});

/// The same checks on a built EvalPlan (no copies; reads the accessors).
std::vector<Diagnostic> VerifyPlan(const eval::EvalPlan& plan,
                                   const VerifyOptions& options = {});

/// Per-construction semiring-trait preconditions, mirroring the gating in
/// Session::Compile (theorem-named): kUvg needs absorptive (Thm 6.2),
/// kFiniteRpq needs plus-idempotent (Thm 5.8), kBellmanFord /
/// kRepeatedSquaring need absorptive (Thms 5.6/5.7), kBounded needs
/// plus-idempotent (chain-exact) or absorptive x-idempotent (Cor 4.7).
std::vector<Diagnostic> VerifyPlanKey(const pipeline::PlanKey& key);

/// Whole-plan verification: circuit + plan + key preconditions + the
/// circuit<->plan cross-checks (output counts and variable spaces agree).
std::vector<Diagnostic> VerifyCompiledPlan(const pipeline::CompiledPlan& plan);

/// True iff no finding in `diagnostics` is an error (warnings/notes pass).
bool Clean(const std::vector<Diagnostic>& diagnostics);

/// First error in `diagnostics`, or nullptr.
const Diagnostic* FirstError(const std::vector<Diagnostic>& diagnostics);

}  // namespace analysis
}  // namespace dlcirc

#endif  // DLCIRC_ANALYSIS_VERIFY_H_
