#include "src/analysis/verify.h"

#include <string>
#include <vector>

#include "src/pipeline/session.h"

namespace dlcirc {
namespace analysis {

namespace {

/// Collects findings up to kMaxFindings, then records one truncation note.
class Reporter {
 public:
  void Error(const char* code, std::string message, std::string note = {}) {
    Add(Severity::kError, code, std::move(message), std::move(note));
  }
  void Warning(const char* code, std::string message, std::string note = {}) {
    Add(Severity::kWarning, code, std::move(message), std::move(note));
  }

  bool has_errors() const { return has_errors_; }
  std::vector<Diagnostic> Take() { return std::move(findings_); }

 private:
  void Add(Severity severity, const char* code, std::string message,
           std::string note) {
    if (severity == Severity::kError) has_errors_ = true;
    if (findings_.size() >= kMaxFindings) {
      if (!truncated_) {
        truncated_ = true;
        findings_.push_back({"verify.truncated", Severity::kNote, {},
                             "more findings suppressed (cap " +
                                 std::to_string(kMaxFindings) + ")",
                             {}});
      }
      return;
    }
    findings_.push_back(
        {code, severity, {}, std::move(message), std::move(note)});
  }

  std::vector<Diagnostic> findings_;
  bool truncated_ = false;
  bool has_errors_ = false;
};

std::string Slot(size_t s) { return "slot " + std::to_string(s); }

/// Borrowed view over a plan's index arrays: one verifier body serves both
/// raw snapshot Parts and a built EvalPlan without copying the (potentially
/// multi-megabyte) vectors.
struct PlanView {
  const std::vector<Gate>& gates;
  const std::vector<uint32_t>& layer_starts;
  const std::vector<uint32_t>& output_slots;
  const std::vector<uint32_t>& dep_starts;
  const std::vector<uint32_t>& dependents;
  const std::vector<uint32_t>& var_starts;
  const std::vector<uint32_t>& var_input_slots;
  const std::vector<uint32_t>& layer_of;
  uint32_t num_vars;
};

void VerifyGateArena(const std::vector<Gate>& gates, uint32_t num_vars,
                     bool child_is_slot, Reporter& report) {
  const char* unit = child_is_slot ? "slot" : "gate";
  for (size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.kind) {
      case GateKind::kZero:
      case GateKind::kOne:
        break;
      case GateKind::kInput:
        if (g.a >= num_vars) {
          report.Error("verify.input-var-range",
                       Slot(i) + ": input variable x" + std::to_string(g.a) +
                           " out of range (num_vars " +
                           std::to_string(num_vars) + ")");
        }
        break;
      case GateKind::kPlus:
      case GateKind::kTimes:
        if (g.a >= i || g.b >= i) {
          report.Error(
              "verify.topological-order",
              Slot(i) + ": child " + unit + " " +
                  std::to_string(g.a >= i ? g.a : g.b) +
                  " does not precede its parent (children must be strictly "
                  "earlier in topological order)");
        }
        break;
      default:
        report.Error("verify.gate-kind",
                     Slot(i) + ": invalid gate kind " +
                         std::to_string(static_cast<int>(g.kind)));
        break;
    }
  }
}

/// The structural checks every other invariant indexes through: array sizes
/// and CSR offset monotonicity. Returns false when later checks cannot run
/// without out-of-bounds reads.
bool VerifyPlanShape(const PlanView& v, Reporter& report) {
  const size_t n = v.gates.size();
  bool ok = true;
  if (v.layer_starts.size() < 2) {
    report.Error("verify.layer-bounds",
                 "layer_starts has " + std::to_string(v.layer_starts.size()) +
                     " entries; a plan needs at least one layer");
    ok = false;
  } else {
    if (v.layer_starts.front() != 0) {
      report.Error("verify.layer-bounds",
                   "layer_starts must begin at slot 0, begins at " +
                       std::to_string(v.layer_starts.front()));
      ok = false;
    }
    if (v.layer_starts.back() != n) {
      report.Error("verify.layer-bounds",
                   "layer_starts must end at num_slots " + std::to_string(n) +
                       ", ends at " + std::to_string(v.layer_starts.back()));
      ok = false;
    }
    for (size_t l = 0; l + 1 < v.layer_starts.size(); ++l) {
      if (v.layer_starts[l] > v.layer_starts[l + 1]) {
        report.Error("verify.layer-order",
                     "layer boundary " + std::to_string(l + 1) +
                         " decreases: layer_starts must be non-decreasing");
        ok = false;
        break;
      }
    }
  }
  if (v.layer_of.size() != n) {
    report.Error("verify.layer-inverse",
                 "layer_of has " + std::to_string(v.layer_of.size()) +
                     " entries for " + std::to_string(n) + " slots");
    ok = false;
  }
  if (v.dep_starts.size() != n + 1) {
    report.Error("verify.csr-offsets",
                 "dep_starts has " + std::to_string(v.dep_starts.size()) +
                     " entries; want num_slots + 1 = " + std::to_string(n + 1));
    ok = false;
  } else {
    if (v.dep_starts.front() != 0 || v.dep_starts.back() != v.dependents.size()) {
      report.Error("verify.csr-offsets",
                   "dep_starts must span [0, " +
                       std::to_string(v.dependents.size()) +
                       "] (the dependents array)");
      ok = false;
    }
    for (size_t s = 0; s + 1 < v.dep_starts.size(); ++s) {
      if (v.dep_starts[s] > v.dep_starts[s + 1]) {
        report.Error("verify.csr-offsets",
                     "dep_starts decreases at " + Slot(s + 1) +
                         ": CSR offsets must be non-decreasing");
        ok = false;
        break;
      }
    }
  }
  if (v.var_starts.size() != static_cast<size_t>(v.num_vars) + 1) {
    report.Error("verify.var-offsets",
                 "var_starts has " + std::to_string(v.var_starts.size()) +
                     " entries; want num_vars + 1 = " +
                     std::to_string(static_cast<size_t>(v.num_vars) + 1));
    ok = false;
  } else {
    if (v.var_starts.front() != 0 ||
        v.var_starts.back() != v.var_input_slots.size()) {
      report.Error("verify.var-offsets",
                   "var_starts must span [0, " +
                       std::to_string(v.var_input_slots.size()) +
                       "] (the var_input_slots array)");
      ok = false;
    }
    for (size_t x = 0; x + 1 < v.var_starts.size(); ++x) {
      if (v.var_starts[x] > v.var_starts[x + 1]) {
        report.Error("verify.var-offsets",
                     "var_starts decreases at variable x" + std::to_string(x + 1) +
                         ": CSR offsets must be non-decreasing");
        ok = false;
        break;
      }
    }
  }
  return ok;
}

/// One fused streaming pass over the plan that decides "would the reporting
/// path below find any error?" without building a single message. The error
/// sets are exactly equivalent:
///   - the shape prechecks mirror VerifyPlanShape;
///   - layer_of is checked against a layer index advanced in slot order
///     (layer_starts is already known monotone), which is the layer-inverse
///     check without the nested loop;
///   - a kPlus/kTimes child below the current layer's start slot is the
///     child-in-strictly-lower-layer check, and — since the layer start
///     never exceeds the slot — it subsumes the topological-order check;
///   - the dependents / var_input_slots CSR indexes are replayed with
///     cursors exactly as the reporting path does, which also subsumes their
///     range checks: an out-of-range entry can never equal the parent slot
///     the replay expects at its position, and every position is visited or
///     left under a cursor the final fullness check catches.
/// A clean plan (the only case on a healthy serving path) therefore costs
/// one pass + the two cursor arrays; a dirty plan falls through to the slow
/// reporting passes for its deterministic diagnostics.
bool FastPlanClean(const PlanView& v) {
  const size_t n = v.gates.size();
  const size_t bounds = v.layer_starts.size();
  if (bounds < 2 || v.layer_starts.front() != 0 || v.layer_starts.back() != n) {
    return false;
  }
  for (size_t l = 0; l + 1 < bounds; ++l) {
    if (v.layer_starts[l] > v.layer_starts[l + 1]) return false;
  }
  if (v.layer_of.size() != n) return false;
  if (v.dep_starts.size() != n + 1 || v.dep_starts.front() != 0 ||
      v.dep_starts.back() != v.dependents.size()) {
    return false;
  }
  for (size_t s = 0; s < n; ++s) {
    if (v.dep_starts[s] > v.dep_starts[s + 1]) return false;
  }
  if (v.var_starts.size() != static_cast<size_t>(v.num_vars) + 1 ||
      v.var_starts.front() != 0 ||
      v.var_starts.back() != v.var_input_slots.size()) {
    return false;
  }
  for (size_t x = 0; x < v.num_vars; ++x) {
    if (v.var_starts[x] > v.var_starts[x + 1]) return false;
  }
  for (uint32_t s : v.output_slots) {
    if (s >= n) return false;
  }

  std::vector<uint32_t> cursor(v.dep_starts.begin(), v.dep_starts.end() - 1);
  std::vector<uint32_t> vcursor(v.var_starts.begin(), v.var_starts.end() - 1);
  const Gate* gates = v.gates.data();
  const uint32_t* dep_starts = v.dep_starts.data();
  const uint32_t* dependents = v.dependents.data();
  uint32_t* cur = cursor.data();
  size_t layer = 0;
  uint32_t layer_start = 0;
  for (size_t s = 0; s < n; ++s) {
    while (layer + 2 < bounds && v.layer_starts[layer + 1] <= s) {
      ++layer;
      layer_start = v.layer_starts[layer];
    }
    if (v.layer_of[s] != layer) return false;
    const Gate& g = gates[s];
    switch (g.kind) {
      case GateKind::kZero:
      case GateKind::kOne:
        break;
      case GateKind::kInput: {
        const uint32_t x = g.a;
        if (x >= v.num_vars) return false;
        const uint32_t c = vcursor[x];
        if (c >= v.var_starts[x + 1] || v.var_input_slots[c] != s) return false;
        vcursor[x] = c + 1;
        break;
      }
      case GateKind::kPlus:
      case GateKind::kTimes: {
        if (g.a >= layer_start || g.b >= layer_start) return false;
        const uint32_t ca = cur[g.a];
        if (ca >= dep_starts[g.a + 1] || dependents[ca] != s) return false;
        cur[g.a] = ca + 1;
        const uint32_t cb = cur[g.b];
        if (cb >= dep_starts[g.b + 1] || dependents[cb] != s) return false;
        cur[g.b] = cb + 1;
        break;
      }
      default:
        return false;
    }
  }
  for (size_t s = 0; s < n; ++s) {
    if (cur[s] != v.dep_starts[s + 1]) return false;
  }
  for (size_t x = 0; x < v.num_vars; ++x) {
    if (vcursor[x] != v.var_starts[x + 1]) return false;
  }
  return true;
}

// Output-cone reachability: dead slots are harmless for soundness but
// waste every evaluation sweep; a compacted plan (EvalPlan::Build) never
// has them, so their presence flags a foreign or corrupted producer.
void VerifyOutputCone(const PlanView& v, Reporter& report) {
  const size_t n = v.gates.size();
  std::vector<uint8_t> reachable(n, 0);
  for (uint32_t s : v.output_slots) reachable[s] = 1;
  size_t live = 0;
  for (size_t s = n; s-- > 0;) {
    if (!reachable[s]) continue;
    ++live;
    const Gate& g = v.gates[s];
    if (g.kind == GateKind::kPlus || g.kind == GateKind::kTimes) {
      reachable[g.a] = 1;
      reachable[g.b] = 1;
    }
  }
  if (live < n) {
    report.Warning("verify.output-cone",
                   std::to_string(n - live) +
                       " slot(s) unreachable from any output",
                   "every sweep evaluates them for nothing; EvalPlan::Build "
                   "compacts plans to the output cone");
  }
}

void VerifyPlanView(const PlanView& v, Reporter& report,
                    const VerifyOptions& options) {
  const size_t n = v.gates.size();

  if (FastPlanClean(v)) {
    if (!options.errors_only) VerifyOutputCone(v, report);
    return;
  }

  VerifyGateArena(v.gates, v.num_vars, /*child_is_slot=*/true, report);
  const bool arena_ok = !report.has_errors();
  if (!VerifyPlanShape(v, report)) return;

  // layer_of must be the exact inverse of the layer_starts partition.
  for (size_t l = 0; l + 1 < v.layer_starts.size(); ++l) {
    for (uint32_t s = v.layer_starts[l]; s < v.layer_starts[l + 1]; ++s) {
      if (v.layer_of[s] != l) {
        report.Error("verify.layer-inverse",
                     Slot(s) + ": layer_of says layer " +
                         std::to_string(v.layer_of[s]) +
                         " but layer_starts places it in layer " +
                         std::to_string(l));
      }
    }
  }

  // Children must live in strictly lower layers (the layer-barrier
  // parallelism contract), outputs/index entries must be valid slots.
  if (arena_ok) {
    for (size_t s = 0; s < n; ++s) {
      const Gate& g = v.gates[s];
      if (g.kind != GateKind::kPlus && g.kind != GateKind::kTimes) continue;
      if (v.layer_of[g.a] >= v.layer_of[s] || v.layer_of[g.b] >= v.layer_of[s]) {
        report.Error("verify.layer-order",
                     Slot(s) + " (layer " + std::to_string(v.layer_of[s]) +
                         "): child in the same or a later layer breaks the "
                         "layer-barrier evaluation contract");
      }
    }
  }
  for (uint32_t s : v.output_slots) {
    if (s >= n) {
      report.Error("verify.slot-bounds", "output slot " + std::to_string(s) +
                                             " out of range (num_slots " +
                                             std::to_string(n) + ")");
    }
  }
  for (uint32_t s : v.dependents) {
    if (s >= n) {
      report.Error("verify.slot-bounds",
                   "dependents entry " + std::to_string(s) +
                       " out of range (num_slots " + std::to_string(n) + ")");
    }
  }
  for (uint32_t s : v.var_input_slots) {
    if (s >= n) {
      report.Error("verify.slot-bounds",
                   "var_input_slots entry " + std::to_string(s) +
                       " out of range (num_slots " + std::to_string(n) + ")");
    }
  }
  if (report.has_errors()) return;

  // The CSR dependents index must be the exact inverse of the forward
  // edges. EvalPlan::Build fills it with one cursor pass in slot order, so
  // replaying that pass and comparing is an O(E) equality check: every
  // parent appears in each child's range, in ascending parent order, and
  // every range is exactly full.
  {
    std::vector<uint32_t> cursor(v.dep_starts.begin(), v.dep_starts.end() - 1);
    bool mismatch = false;
    for (uint32_t s = 0; s < n && !mismatch; ++s) {
      const Gate& g = v.gates[s];
      if (g.kind != GateKind::kPlus && g.kind != GateKind::kTimes) continue;
      for (uint32_t child : {g.a, g.b}) {
        if (cursor[child] >= v.dep_starts[child + 1] ||
            v.dependents[cursor[child]] != s) {
          report.Error(
              "verify.csr-inverse",
              Slot(child) + ": dependents index is not the inverse of the "
                            "forward edges (parent " +
                  std::to_string(s) + " missing or misplaced)");
          mismatch = true;
          break;
        }
        ++cursor[child];
      }
    }
    for (uint32_t s = 0; s < n && !mismatch; ++s) {
      if (cursor[s] != v.dep_starts[s + 1]) {
        report.Error("verify.csr-inverse",
                     Slot(s) + ": dependents range holds " +
                         std::to_string(v.dep_starts[s + 1] - cursor[s]) +
                         " entr(ies) no forward edge accounts for");
        mismatch = true;
      }
    }
  }

  // var_input_slots must be the exact CSR inverse of the kInput gates.
  {
    std::vector<uint32_t> cursor(v.var_starts.begin(), v.var_starts.end() - 1);
    bool mismatch = false;
    for (uint32_t s = 0; s < n && !mismatch; ++s) {
      const Gate& g = v.gates[s];
      if (g.kind != GateKind::kInput) continue;
      if (cursor[g.a] >= v.var_starts[g.a + 1] ||
          v.var_input_slots[cursor[g.a]] != s) {
        report.Error("verify.var-inverse",
                     "variable x" + std::to_string(g.a) +
                         ": var_input_slots is not the inverse of the kInput "
                         "gates (" + Slot(s) + " missing or misplaced)");
        mismatch = true;
        break;
      }
      ++cursor[g.a];
    }
    for (uint32_t x = 0; x < v.num_vars && !mismatch; ++x) {
      if (cursor[x] != v.var_starts[x + 1]) {
        report.Error("verify.var-inverse",
                     "variable x" + std::to_string(x) +
                         ": var_input_slots range holds " +
                         std::to_string(v.var_starts[x + 1] - cursor[x]) +
                         " entr(ies) naming no kInput gate");
        mismatch = true;
      }
    }
  }

  if (!options.errors_only) VerifyOutputCone(v, report);
}

}  // namespace

std::vector<Diagnostic> VerifyCircuitParts(const std::vector<Gate>& gates,
                                           const std::vector<GateId>& outputs,
                                           uint32_t num_vars) {
  Reporter report;
  VerifyGateArena(gates, num_vars, /*child_is_slot=*/false, report);
  for (GateId o : outputs) {
    if (o >= gates.size()) {
      report.Error("verify.slot-bounds",
                   "circuit output gate " + std::to_string(o) +
                       " out of range (arena size " +
                       std::to_string(gates.size()) + ")");
    }
  }
  return report.Take();
}

std::vector<Diagnostic> VerifyCircuit(const Circuit& circuit) {
  return VerifyCircuitParts(circuit.gates(), circuit.outputs(),
                            circuit.num_vars());
}

std::vector<Diagnostic> VerifyParts(const eval::EvalPlan::Parts& parts,
                                    const VerifyOptions& options) {
  Reporter report;
  VerifyPlanView({parts.gates, parts.layer_starts, parts.output_slots,
                  parts.dep_starts, parts.dependents, parts.var_starts,
                  parts.var_input_slots, parts.layer_of, parts.num_vars},
                 report, options);
  return report.Take();
}

std::vector<Diagnostic> VerifyPlan(const eval::EvalPlan& plan,
                                   const VerifyOptions& options) {
  Reporter report;
  VerifyPlanView({plan.gates(), plan.layer_starts(), plan.output_slots(),
                  plan.dep_starts(), plan.dependents(), plan.var_starts(),
                  plan.var_input_slots(), plan.layer_of(), plan.num_vars()},
                 report, options);
  return report.Take();
}

std::vector<Diagnostic> VerifyPlanKey(const pipeline::PlanKey& key) {
  using pipeline::Construction;
  Reporter report;
  switch (key.construction) {
    case Construction::kGrounded:
      break;
    case Construction::kUvg:
      if (!(key.absorptive && key.plus_idempotent)) {
        report.Error("verify.semiring-precondition",
                     "UVG plan keyed without the absorptive flags",
                     "the UVG construction (Theorem 6.2) is only sound over "
                     "absorptive semirings");
      }
      break;
    case Construction::kFiniteRpq:
      if (!key.plus_idempotent) {
        report.Error("verify.semiring-precondition",
                     "finite-RPQ plan keyed without plus-idempotence",
                     "Theorem 5.8 sums once per word; only plus-idempotent "
                     "semirings collapse the per-derivation difference");
      }
      break;
    case Construction::kBounded:
      if (!key.plus_idempotent && !(key.absorptive && key.times_idempotent)) {
        report.Error("verify.semiring-precondition",
                     "bounded plan keyed without plus-idempotence or the "
                     "absorptive x-idempotent pair",
                     "the Theorem 4.3 truncation is sound over plus-idempotent "
                     "semirings (chain-exact bounds) or absorptive "
                     "times-idempotent ones (Corollary 4.7)");
      }
      break;
    case Construction::kBellmanFord:
    case Construction::kRepeatedSquaring:
      if (!key.absorptive) {
        report.Error("verify.semiring-precondition",
                     "path-construction plan keyed without absorption",
                     "Theorems 5.6/5.7 sum over walks up to a layer bound; "
                     "only absorptive semirings collapse the longer walks");
      }
      break;
    default:
      report.Error("verify.construction",
                   "unknown construction " +
                       std::to_string(static_cast<int>(key.construction)));
      break;
  }
  return report.Take();
}

std::vector<Diagnostic> VerifyCompiledPlan(const pipeline::CompiledPlan& plan) {
  std::vector<Diagnostic> out = VerifyPlanKey(plan.key);
  std::vector<Diagnostic> circuit = VerifyCircuit(plan.circuit);
  out.insert(out.end(), circuit.begin(), circuit.end());
  std::vector<Diagnostic> plan_diags = VerifyPlan(plan.plan);
  out.insert(out.end(), plan_diags.begin(), plan_diags.end());
  if (plan.plan.num_outputs() != plan.circuit.outputs().size()) {
    out.push_back({"verify.cross-check", Severity::kError, {},
                   "plan serves " + std::to_string(plan.plan.num_outputs()) +
                       " outputs but its circuit has " +
                       std::to_string(plan.circuit.outputs().size()),
                   {}});
  }
  if (plan.plan.num_vars() != plan.circuit.num_vars()) {
    out.push_back({"verify.cross-check", Severity::kError, {},
                   "plan input space (" + std::to_string(plan.plan.num_vars()) +
                       " vars) disagrees with its circuit (" +
                       std::to_string(plan.circuit.num_vars()) + ")",
                   {}});
  }
  return out;
}

bool Clean(const std::vector<Diagnostic>& diagnostics) {
  return FirstError(diagnostics) == nullptr;
}

const Diagnostic* FirstError(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

}  // namespace analysis
}  // namespace dlcirc
