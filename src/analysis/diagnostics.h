// Structured diagnostics: the one vocabulary every static-analysis surface
// in the repo speaks — parser errors (src/datalog/parser, src/lang), the
// program linter (src/analysis/lint.h), and the plan/circuit verifier
// (src/analysis/verify.h).
//
// A Diagnostic is a machine-readable finding: a stable dotted code
// ("parse.unsafe-rule", "verify.csr-inverse"), a severity, an optional
// source span (1-based line/col; 0 = unknown), a one-line message, and an
// optional note carrying the elaboration or theorem reference. Renderers
// produce a deterministic text form (one finding per line, suitable for
// golden tests) and a deterministic JSON form (for CI consumers); ExitCode
// maps a finding list to the CI convention `dlcirc check` exits with.
//
// This module is a leaf: it depends on nothing but the standard library, so
// the parser layers underneath the AST can emit structured errors without
// an include cycle.
#ifndef DLCIRC_ANALYSIS_DIAGNOSTICS_H_
#define DLCIRC_ANALYSIS_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dlcirc {
namespace analysis {

/// A source position, 1-based; 0 means unknown (e.g. a whole-file finding
/// or a verifier finding with no source text at all).
struct Span {
  int line = 0;
  int col = 0;
  bool known() const { return line > 0; }
};

enum class Severity : uint8_t { kNote, kWarning, kError };

std::string_view SeverityName(Severity severity);

/// One finding. `code` is a stable dotted identifier, namespaced by the
/// producing surface: parse.* (syntax/safety), lint.* (program linter),
/// verify.* (plan/circuit invariants), snapshot.* (file-level problems).
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  Span span;
  std::string message;
  std::string note;  ///< optional elaboration, often a theorem reference
};

/// Counts by severity, for exit codes and summaries.
struct DiagnosticCounts {
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
};
DiagnosticCounts Count(const std::vector<Diagnostic>& diagnostics);

/// One finding per line (plus an indented `note:` line when present):
///
///   error[parse.unsafe-rule] line 3, col 1: unsafe rule ...
///     note: every head variable must occur in the body
///
/// Renders findings in input order — producers emit deterministically, so
/// the text is byte-identical across runs.
std::string RenderText(const std::vector<Diagnostic>& diagnostics);

/// Renders one finding (the text form's single line, without trailing '\n').
std::string RenderTextLine(const Diagnostic& diagnostic);

/// Deterministic JSON object:
///
///   {"diagnostics": [{"code": ..., "severity": ..., "line": N, "col": N,
///     "message": ..., "note": ...}, ...], "errors": N, "warnings": N}
///
/// line/col are omitted when unknown; note when empty. Key order is fixed.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics);

/// CI convention: 0 = clean (notes allowed), 1 = at least one error,
/// 2 = warnings but no errors.
int ExitCode(const std::vector<Diagnostic>& diagnostics);

/// Legacy string form for Result<T> error channels: "line N, col M: message"
/// (span-less findings render as just "message"). Keeps the established
/// parser error shape while the structured form carries the same data.
std::string RenderLegacy(const Diagnostic& diagnostic);

}  // namespace analysis
}  // namespace dlcirc

#endif  // DLCIRC_ANALYSIS_DIAGNOSTICS_H_
