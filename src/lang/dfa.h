// Finite automata over dense label alphabets: NFA -> DFA determinization,
// Moore minimization, finiteness / pumping analysis (used by the RPQ
// dichotomy, Theorems 5.3/5.9), longest-accepted-word computation (Theorem
// 5.8's unrolling bound), and the product construction with labeled graphs
// (the RPQ -> TC direction of Theorem 5.9).
#ifndef DLCIRC_LANG_DFA_H_
#define DLCIRC_LANG_DFA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/labeled_graph.h"
#include "src/util/result.h"

namespace dlcirc {

/// Nondeterministic finite automaton (no epsilon transitions).
struct Nfa {
  uint32_t num_states = 0;
  uint32_t num_labels = 0;
  uint32_t start = 0;
  std::vector<bool> accept;
  struct Transition {
    uint32_t from, label, to;
  };
  std::vector<Transition> transitions;
};

/// Pumping triple for a regular language: x y^i z accepted for all i >= 0,
/// |y| >= 1 (Theorem 5.9's decomposition).
struct DfaPumping {
  std::vector<uint32_t> x, y, z;
};

class Dfa {
 public:
  /// Subset construction (unreachable subsets not materialized).
  static Dfa Determinize(const Nfa& nfa);

  uint32_t num_states() const { return static_cast<uint32_t>(accept_.size()); }
  uint32_t num_labels() const { return num_labels_; }
  uint32_t start() const { return start_; }
  bool accept(uint32_t q) const { return accept_[q]; }
  /// Transition or kDead.
  static constexpr int32_t kDead = -1;
  int32_t Next(uint32_t state, uint32_t label) const {
    return delta_[state][label];
  }

  bool Accepts(const std::vector<uint32_t>& word) const;

  /// Moore partition-refinement minimization (completes the automaton with
  /// a dead state internally; the result is trimmed back).
  Dfa Minimize() const;

  bool IsEmptyLanguage() const;
  /// |L| finite iff no useful state (reachable + co-reachable) on a cycle.
  bool IsFiniteLanguage() const;
  /// For finite languages: length of the longest accepted word (0 for the
  /// empty language). CHECK-fails on infinite languages.
  uint32_t LongestAcceptedWordLength() const;
  /// Constructive pumping: fails iff the language is finite.
  Result<DfaPumping> FindPumping() const;

  /// Accepted words of length <= max_len (BFS order), up to max_count.
  std::vector<std::vector<uint32_t>> EnumerateWords(uint32_t max_len,
                                                    size_t max_count) const;

  std::string ToString() const;

  /// Direct construction for tests/benches.
  Dfa(uint32_t num_states, uint32_t num_labels, uint32_t start,
      std::vector<bool> accept, std::vector<std::vector<int32_t>> delta);

 private:
  std::vector<bool> UsefulStates() const;

  uint32_t num_labels_ = 0;
  uint32_t start_ = 0;
  std::vector<bool> accept_;
  std::vector<std::vector<int32_t>> delta_;  // [state][label]
};

/// Product of a labeled graph with a DFA (Theorem 5.9, second reduction):
/// vertex (v, q), one edge (u,q) -> (v,q') per graph edge u->v with label l
/// and transition q -l-> q'. Product edges remember their originating graph
/// edge so circuit inputs can be identified across copies.
struct GraphDfaProduct {
  LabeledGraph graph;                 ///< single-label product graph
  std::vector<uint32_t> edge_origin;  ///< product edge -> original edge index
  uint32_t num_dfa_states;

  uint32_t VertexOf(uint32_t v, uint32_t q) const { return v * num_dfa_states + q; }
};

GraphDfaProduct BuildGraphDfaProduct(const LabeledGraph& g, const Dfa& dfa);

}  // namespace dlcirc

#endif  // DLCIRC_LANG_DFA_H_
