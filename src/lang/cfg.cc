#include "src/lang/cfg.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <limits>
#include <set>
#include <sstream>

#include "src/util/check.h"

namespace dlcirc {

namespace {
constexpr uint64_t kInfLen = std::numeric_limits<uint64_t>::max();

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kInfLen || b == kInfLen) return kInfLen;
  return (a > kInfLen - b) ? kInfLen : a + b;
}
}  // namespace

void Cfg::AddProduction(uint32_t lhs, std::vector<GSymbol> rhs) {
  DLCIRC_CHECK(!rhs.empty()) << "epsilon productions are not supported";
  DLCIRC_CHECK_LT(lhs, nonterminals_.size());
  for (const GSymbol& s : rhs) {
    DLCIRC_CHECK_LT(s.id, s.is_terminal ? terminals_.size() : nonterminals_.size());
  }
  productions_.push_back({lhs, std::move(rhs)});
}

std::vector<bool> Cfg::ProductiveNonterminals() const {
  std::vector<bool> productive(nonterminals_.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : productions_) {
      if (productive[p.lhs]) continue;
      bool all = true;
      for (const GSymbol& s : p.rhs) {
        if (!s.is_terminal && !productive[s.id]) {
          all = false;
          break;
        }
      }
      if (all) {
        productive[p.lhs] = true;
        changed = true;
      }
    }
  }
  return productive;
}

std::vector<bool> Cfg::ReachableNonterminals() const {
  std::vector<bool> reach(nonterminals_.size(), false);
  if (nonterminals_.size() == 0) return reach;
  reach[start_] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : productions_) {
      if (!reach[p.lhs]) continue;
      for (const GSymbol& s : p.rhs) {
        if (!s.is_terminal && !reach[s.id]) {
          reach[s.id] = true;
          changed = true;
        }
      }
    }
  }
  return reach;
}

std::vector<bool> Cfg::UsefulNonterminals() const {
  // Reachability restricted to productions whose nonterminals are all
  // productive (otherwise a "reachable" symbol may not occur in any
  // completable derivation).
  std::vector<bool> productive = ProductiveNonterminals();
  std::vector<bool> useful(nonterminals_.size(), false);
  if (nonterminals_.size() == 0) return useful;
  if (!productive[start_]) return useful;
  useful[start_] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : productions_) {
      if (!useful[p.lhs]) continue;
      bool viable = true;
      for (const GSymbol& s : p.rhs) {
        if (!s.is_terminal && !productive[s.id]) viable = false;
      }
      if (!viable) continue;
      for (const GSymbol& s : p.rhs) {
        if (!s.is_terminal && !useful[s.id]) {
          useful[s.id] = true;
          changed = true;
        }
      }
    }
  }
  return useful;
}

bool Cfg::IsEmptyLanguage() const {
  if (nonterminals_.size() == 0) return true;
  return !ProductiveNonterminals()[start_];
}

Cfg Cfg::EliminateUnitProductions() const {
  // unit_reach[A] = {B : A =>* B via unit productions}, including A itself.
  size_t n = nonterminals_.size();
  std::vector<std::vector<bool>> unit_reach(n, std::vector<bool>(n, false));
  for (size_t a = 0; a < n; ++a) unit_reach[a][a] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Production& p : productions_) {
      if (p.rhs.size() != 1 || p.rhs[0].is_terminal) continue;
      for (size_t a = 0; a < n; ++a) {
        if (!unit_reach[a][p.lhs]) continue;
        if (!unit_reach[a][p.rhs[0].id]) {
          unit_reach[a][p.rhs[0].id] = true;
          changed = true;
        }
      }
    }
  }
  Cfg out;
  out.nonterminals_ = nonterminals_;
  out.terminals_ = terminals_;
  out.start_ = start_;
  std::set<std::pair<uint32_t, std::vector<std::pair<bool, uint32_t>>>> seen;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (!unit_reach[a][b]) continue;
      for (const Production& p : productions_) {
        if (p.lhs != b) continue;
        if (p.rhs.size() == 1 && !p.rhs[0].is_terminal) continue;  // unit: drop
        std::vector<std::pair<bool, uint32_t>> key;
        for (const GSymbol& s : p.rhs) key.emplace_back(s.is_terminal, s.id);
        if (seen.insert({static_cast<uint32_t>(a), key}).second) {
          out.productions_.push_back({static_cast<uint32_t>(a), p.rhs});
        }
      }
    }
  }
  return out;
}

Cfg Cfg::Binarize() const {
  Cfg out;
  out.nonterminals_ = nonterminals_;
  out.terminals_ = terminals_;
  out.start_ = start_;
  // Wrap terminals occurring in long rhs.
  std::vector<uint32_t> term_wrapper(terminals_.size(), 0xffffffffu);
  auto wrap_terminal = [&](uint32_t t) {
    if (term_wrapper[t] == 0xffffffffu) {
      term_wrapper[t] = out.nonterminals_.Intern("_T" + terminals_.Name(t));
      out.productions_.push_back({term_wrapper[t], {GSymbol::T(t)}});
    }
    return term_wrapper[t];
  };
  uint32_t fresh = 0;
  for (const Production& p : productions_) {
    if (p.rhs.size() == 1) {
      out.productions_.push_back(p);
      continue;
    }
    std::vector<GSymbol> nts;
    nts.reserve(p.rhs.size());
    for (const GSymbol& s : p.rhs) {
      nts.push_back(s.is_terminal ? GSymbol::N(wrap_terminal(s.id)) : s);
    }
    uint32_t lhs = p.lhs;
    // A -> N0 N1 ... Nk  becomes  A -> N0 F0, F0 -> N1 F1, ..., F -> N(k-1) Nk.
    for (size_t i = 0; i + 2 < nts.size(); ++i) {
      uint32_t f = out.nonterminals_.Intern("_B" + std::to_string(fresh++));
      out.productions_.push_back({lhs, {nts[i], GSymbol::N(f)}});
      lhs = f;
    }
    out.productions_.push_back({lhs, {nts[nts.size() - 2], nts[nts.size() - 1]}});
  }
  return out;
}

bool Cfg::IsFiniteLanguage() const {
  if (IsEmptyLanguage()) return true;
  Cfg g = EliminateUnitProductions();
  std::vector<bool> useful = g.UsefulNonterminals();
  // Cycle detection on "A -> B occurs in rhs" among useful symbols; after
  // unit elimination every such edge comes from an rhs of length >= 2, so a
  // cycle pumps at least one sibling terminal yield per loop.
  size_t n = g.nonterminals_.size();
  std::vector<std::vector<uint32_t>> adj(n);
  for (const Production& p : g.productions_) {
    if (!useful[p.lhs]) continue;
    for (const GSymbol& s : p.rhs) {
      if (!s.is_terminal && useful[s.id]) adj[p.lhs].push_back(s.id);
    }
  }
  // DFS tri-color cycle detection.
  std::vector<uint8_t> color(n, 0);
  for (size_t s = 0; s < n; ++s) {
    if (!useful[s] || color[s] != 0) continue;
    std::vector<std::pair<uint32_t, size_t>> stack = {{static_cast<uint32_t>(s), 0}};
    color[s] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < adj[v].size()) {
        uint32_t w = adj[v][i++];
        if (color[w] == 1) return false;  // cycle: infinite
        if (color[w] == 0) {
          color[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::vector<uint32_t> Cfg::ShortestYieldLengths() const {
  size_t n = nonterminals_.size();
  std::vector<uint64_t> len(n, kInfLen);
  for (size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const Production& p : productions_) {
      uint64_t total = 0;
      for (const GSymbol& s : p.rhs) {
        total = SatAdd(total, s.is_terminal ? 1 : len[s.id]);
      }
      if (total < len[p.lhs]) {
        len[p.lhs] = total;
        changed = true;
      }
    }
    if (!changed) break;
  }
  std::vector<uint32_t> out(n, kNoWord);
  for (size_t i = 0; i < n; ++i) {
    if (len[i] != kInfLen) {
      out[i] = static_cast<uint32_t>(std::min<uint64_t>(len[i], kNoWord - 1));
    }
  }
  return out;
}

std::optional<uint32_t> Cfg::LongestWordLength() const {
  if (IsEmptyLanguage() || !IsFiniteLanguage()) return std::nullopt;
  Cfg g = EliminateUnitProductions();
  std::vector<bool> useful = g.UsefulNonterminals();
  std::vector<bool> productive = g.ProductiveNonterminals();
  size_t n = g.nonterminals_.size();
  // Finite language => the useful nonterminals of the unit-free grammar form
  // a DAG (IsFiniteLanguage's criterion), so the max-yield DP reaches its
  // fixpoint within n rounds. Productions with a non-productive rhs symbol
  // derive nothing and are skipped.
  std::vector<uint64_t> longest(n, 0);
  std::vector<bool> has(n, false);
  for (size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const Production& p : g.productions_) {
      if (!useful[p.lhs]) continue;
      uint64_t total = 0;
      bool ready = true;
      for (const GSymbol& s : p.rhs) {
        if (s.is_terminal) {
          total = SatAdd(total, 1);
        } else if (!productive[s.id] || !has[s.id]) {
          ready = false;
          break;
        } else {
          total = SatAdd(total, longest[s.id]);
        }
      }
      if (!ready) continue;
      if (!has[p.lhs] || total > longest[p.lhs]) {
        has[p.lhs] = true;
        longest[p.lhs] = total;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (!has[start_]) return std::nullopt;
  return static_cast<uint32_t>(std::min<uint64_t>(longest[start_], kNoWord - 1));
}

std::optional<std::vector<uint32_t>> Cfg::ShortestYield(uint32_t nt) const {
  std::vector<uint32_t> lens = ShortestYieldLengths();
  if (lens[nt] == kNoWord) return std::nullopt;
  // Greedy reconstruction: expand with a production achieving the minimum.
  std::vector<uint32_t> word;
  std::vector<GSymbol> stack = {GSymbol::N(nt)};
  while (!stack.empty()) {
    GSymbol s = stack.back();
    stack.pop_back();
    if (s.is_terminal) {
      word.push_back(s.id);
      continue;
    }
    const Production* best = nullptr;
    uint64_t best_len = kInfLen;
    for (const Production& p : productions_) {
      if (p.lhs != s.id) continue;
      uint64_t total = 0;
      for (const GSymbol& r : p.rhs) total = SatAdd(total, r.is_terminal ? 1 : lens[r.id]);
      if (total < best_len) {
        best_len = total;
        best = &p;
      }
    }
    DLCIRC_CHECK(best != nullptr);
    for (auto it = best->rhs.rbegin(); it != best->rhs.rend(); ++it) stack.push_back(*it);
    DLCIRC_CHECK_LE(word.size() + stack.size(), 1000000u) << "yield too long";
  }
  return word;
}

bool Cfg::Accepts(const std::vector<uint32_t>& word) const {
  if (word.empty()) return false;
  // CNF = unit-eliminate, then binarize (which wraps terminals), then
  // unit-eliminate again (wrapping cannot introduce units, but binarize of a
  // unit-free grammar keeps it unit-free; one pass in this order suffices).
  Cfg cnf = EliminateUnitProductions().Binarize();
  size_t n = word.size();
  size_t nn = cnf.nonterminals_.size();
  // table[i][l] = bitset over nonterminals deriving word[i, i+l).
  std::vector<std::vector<std::vector<bool>>> table(
      n, std::vector<std::vector<bool>>(n + 1, std::vector<bool>(nn, false)));
  for (size_t i = 0; i < n; ++i) {
    for (const Production& p : cnf.productions_) {
      if (p.rhs.size() == 1 && p.rhs[0].is_terminal && p.rhs[0].id == word[i]) {
        table[i][1][p.lhs] = true;
      }
    }
  }
  for (size_t l = 2; l <= n; ++l) {
    for (size_t i = 0; i + l <= n; ++i) {
      for (const Production& p : cnf.productions_) {
        if (p.rhs.size() != 2) continue;
        DLCIRC_CHECK(!p.rhs[0].is_terminal && !p.rhs[1].is_terminal);
        if (table[i][l][p.lhs]) continue;
        for (size_t k = 1; k < l; ++k) {
          if (table[i][k][p.rhs[0].id] && table[i + k][l - k][p.rhs[1].id]) {
            table[i][l][p.lhs] = true;
            break;
          }
        }
      }
    }
  }
  return table[0][n][cnf.start_];
}

std::vector<std::vector<uint32_t>> Cfg::EnumerateWords(uint32_t max_len,
                                                       size_t max_count) const {
  // words[A][l] = distinct yields of A with length exactly l (capped).
  size_t n = nonterminals_.size();
  std::vector<std::vector<std::set<std::vector<uint32_t>>>> words(
      n, std::vector<std::set<std::vector<uint32_t>>>(max_len + 1));
  for (uint32_t l = 1; l <= max_len; ++l) {
    bool changed = true;
    while (changed) {  // inner fixpoint handles unit productions at length l
      changed = false;
      for (const Production& p : productions_) {
        // Recursive split over rhs with running length.
        std::function<void(size_t, uint32_t, std::vector<uint32_t>&)> go =
            [&](size_t idx, uint32_t used, std::vector<uint32_t>& acc) {
              if (words[p.lhs][l].size() >= max_count) return;
              if (idx == p.rhs.size()) {
                if (used == l && !acc.empty()) {
                  if (words[p.lhs][l].insert(acc).second) changed = true;
                }
                return;
              }
              const GSymbol& s = p.rhs[idx];
              if (s.is_terminal) {
                if (used + 1 > l) return;
                acc.push_back(s.id);
                go(idx + 1, used + 1, acc);
                acc.pop_back();
              } else {
                for (uint32_t sub = 1; used + sub <= l; ++sub) {
                  for (const auto& w : words[s.id][sub]) {
                    size_t before = acc.size();
                    acc.insert(acc.end(), w.begin(), w.end());
                    go(idx + 1, used + sub, acc);
                    acc.resize(before);
                  }
                }
              }
            };
        std::vector<uint32_t> acc;
        go(0, 0, acc);
      }
    }
  }
  std::vector<std::vector<uint32_t>> out;
  for (uint32_t l = 1; l <= max_len && out.size() < max_count; ++l) {
    for (const auto& w : words[start_][l]) {
      out.push_back(w);
      if (out.size() >= max_count) break;
    }
  }
  return out;
}

Result<CfgPumping> Cfg::FindPumping() const {
  if (IsFiniteLanguage()) {
    return Result<CfgPumping>::Error("language is finite: no pumping exists");
  }
  Cfg g = EliminateUnitProductions();
  std::vector<bool> useful = g.UsefulNonterminals();
  std::vector<uint32_t> lens = g.ShortestYieldLengths();
  size_t n = g.nonterminals_.size();

  // Edges (A -> B, via production p at rhs position i) among useful symbols.
  struct Edge {
    uint32_t to;
    uint32_t prod;
    uint32_t pos;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (uint32_t pi = 0; pi < g.productions_.size(); ++pi) {
    const Production& p = g.productions_[pi];
    if (!useful[p.lhs]) continue;
    bool viable = true;
    for (const GSymbol& s : p.rhs) {
      if (!s.is_terminal && !useful[s.id]) viable = false;
    }
    if (!viable) continue;
    for (uint32_t i = 0; i < p.rhs.size(); ++i) {
      if (!p.rhs[i].is_terminal) adj[p.lhs].push_back({p.rhs[i].id, pi, i});
    }
  }

  // Find a cycle via DFS recording the path of (node, edge) explicitly.
  std::vector<uint8_t> color(n, 0);
  std::vector<std::pair<uint32_t, Edge>> chain;  // (source node, edge taken)
  uint32_t cycle_head = 0xffffffffu;
  std::function<bool(uint32_t)> dfs2 = [&](uint32_t v) -> bool {
    color[v] = 1;
    for (const Edge& e : adj[v]) {
      if (color[e.to] == 1) {
        chain.emplace_back(v, e);
        cycle_head = e.to;
        return true;
      }
      if (color[e.to] == 0) {
        chain.emplace_back(v, e);
        if (dfs2(e.to)) return true;
        chain.pop_back();
      }
    }
    color[v] = 2;
    return false;
  };
  bool found = false;
  for (uint32_t s = 0; s < n && !found; ++s) {
    if (useful[s] && color[s] == 0) {
      chain.clear();
      found = dfs2(s);
    }
  }
  DLCIRC_CHECK(found) << "infinite language must contain a cycle";

  // The cycle is the chain suffix starting where source == cycle_head.
  size_t cycle_start = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].first == cycle_head) cycle_start = i;
  }
  // Yields of siblings: left of pos -> v-part, right of pos -> x-part.
  auto yield_of = [&](const GSymbol& s) -> std::vector<uint32_t> {
    if (s.is_terminal) return {s.id};
    auto w = g.ShortestYield(s.id);
    DLCIRC_CHECK(w.has_value());
    return *w;
  };
  CfgPumping out;
  for (size_t i = cycle_start; i < chain.size(); ++i) {
    const Edge& e = chain[i].second;
    const Production& p = g.productions_[e.prod];
    for (uint32_t j = 0; j < e.pos; ++j) {
      auto w = yield_of(p.rhs[j]);
      out.v.insert(out.v.end(), w.begin(), w.end());
    }
    std::vector<uint32_t> right;
    for (uint32_t j = e.pos + 1; j < p.rhs.size(); ++j) {
      auto w = yield_of(p.rhs[j]);
      right.insert(right.end(), w.begin(), w.end());
    }
    // x accumulates inside-out: this step's right part goes in FRONT.
    out.x.insert(out.x.begin(), right.begin(), right.end());
  }
  DLCIRC_CHECK(!out.v.empty() || !out.x.empty()) << "|vx| must be >= 1";
  // w = shortest yield of the cycle nonterminal.
  auto wy = g.ShortestYield(cycle_head);
  DLCIRC_CHECK(wy.has_value());
  out.w = *wy;
  // u, y: derivation start =>* u <cycle_head> y via BFS over the edge graph.
  std::vector<int64_t> prev(n, -1);
  std::vector<Edge> prev_edge(n);
  std::vector<bool> visited(n, false);
  std::vector<uint32_t> queue = {g.start_};
  visited[g.start_] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    uint32_t v = queue[qi];
    for (const Edge& e : adj[v]) {
      if (!visited[e.to]) {
        visited[e.to] = true;
        prev[e.to] = v;
        prev_edge[e.to] = e;
        queue.push_back(e.to);
      }
    }
  }
  DLCIRC_CHECK(visited[cycle_head]) << "cycle nonterminal must be reachable";
  std::vector<Edge> spath;
  for (uint32_t v = cycle_head; v != g.start_;) {
    spath.push_back(prev_edge[v]);
    v = static_cast<uint32_t>(prev[v]);
    DLCIRC_CHECK(v != 0xffffffffu);
    if (spath.size() > n) break;
  }
  std::reverse(spath.begin(), spath.end());
  for (const Edge& e : spath) {
    const Production& p = g.productions_[e.prod];
    for (uint32_t j = 0; j < e.pos; ++j) {
      auto w = yield_of(p.rhs[j]);
      out.u.insert(out.u.end(), w.begin(), w.end());
    }
    std::vector<uint32_t> right;
    for (uint32_t j = e.pos + 1; j < p.rhs.size(); ++j) {
      auto w = yield_of(p.rhs[j]);
      right.insert(right.end(), w.begin(), w.end());
    }
    out.y.insert(out.y.begin(), right.begin(), right.end());
  }
  return out;
}

std::string Cfg::ToString() const {
  std::ostringstream ss;
  ss << "start: " << nonterminals_.Name(start_) << "\n";
  for (const Production& p : productions_) {
    ss << nonterminals_.Name(p.lhs) << " ->";
    for (const GSymbol& s : p.rhs) {
      ss << " " << (s.is_terminal ? terminals_.Name(s.id) : nonterminals_.Name(s.id));
    }
    ss << "\n";
  }
  return ss.str();
}

Result<Cfg> ParseCfgText(std::string_view text,
                         analysis::Diagnostic* diagnostic) {
  struct Line {
    int number;
    std::string lhs;
    std::vector<std::vector<std::string>> alternatives;
  };
  // `raw` is the current line being tokenized; the offending token's column
  // is recovered from it so the structured diagnostic carries a position the
  // whitespace tokenizer never tracked.
  std::string raw;
  auto error = [&raw, diagnostic](int line, const std::string& message,
                                  const std::string& token = {}) {
    int col = 0;
    if (!token.empty()) {
      if (size_t at = raw.find(token); at != std::string::npos) {
        col = static_cast<int>(at) + 1;
      }
    }
    if (diagnostic != nullptr) {
      *diagnostic = {"parse.grammar", analysis::Severity::kError,
                     {line, col}, message, {}};
    }
    std::ostringstream ss;
    ss << "grammar line " << line;
    if (col > 0) ss << ", col " << col;
    ss << ": " << message;
    return Result<Cfg>::Error(ss.str());
  };
  auto is_ident = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
    }
    return true;
  };

  // Pass 1: split into productions, collecting every LHS name.
  std::vector<Line> lines;
  std::set<std::string> lhs_names;
  std::istringstream in{std::string(text)};
  for (int number = 1; std::getline(in, raw); ++number) {
    if (size_t pct = raw.find('%'); pct != std::string::npos) raw.resize(pct);
    std::istringstream tokens(raw);
    std::vector<std::string> toks;
    for (std::string t; tokens >> t;) toks.push_back(t);
    if (toks.empty()) continue;
    if (toks.size() < 2 || toks[1] != "->") {
      return error(number, "expected `Lhs -> symbol...`");
    }
    if (!is_ident(toks[0])) {
      return error(number, "bad symbol `" + toks[0] + "`", toks[0]);
    }
    Line line{number, toks[0], {{}}};
    for (size_t i = 2; i < toks.size(); ++i) {
      if (toks[i] == "|") {
        line.alternatives.emplace_back();
      } else if (is_ident(toks[i])) {
        line.alternatives.back().push_back(toks[i]);
      } else {
        return error(number, "bad symbol `" + toks[i] + "`", toks[i]);
      }
    }
    for (const auto& alt : line.alternatives) {
      if (alt.empty()) {
        return error(number, "empty right-hand side (grammars are epsilon-free)");
      }
    }
    lhs_names.insert(line.lhs);
    lines.push_back(std::move(line));
  }
  if (lines.empty()) {
    if (diagnostic != nullptr) {
      *diagnostic = {"parse.grammar", analysis::Severity::kError, {},
                     "grammar has no productions", {}};
    }
    return Result<Cfg>::Error("grammar has no productions");
  }

  // Pass 2: build. Nonterminal iff the symbol occurs as some LHS.
  Cfg cfg;
  for (const Line& line : lines) {
    uint32_t lhs = cfg.AddNonterminal(line.lhs);
    for (const auto& alt : line.alternatives) {
      std::vector<GSymbol> rhs;
      for (const std::string& sym : alt) {
        rhs.push_back(lhs_names.count(sym)
                          ? GSymbol::N(cfg.AddNonterminal(sym))
                          : GSymbol::T(cfg.AddTerminal(sym)));
      }
      cfg.AddProduction(lhs, std::move(rhs));
    }
  }
  cfg.SetStart(cfg.nonterminals().Find(lines.front().lhs));
  return cfg;
}

Cfg MakeDyck1Cfg() {
  Cfg g;
  uint32_t s = g.AddNonterminal("S");
  uint32_t l = g.AddTerminal("L");
  uint32_t r = g.AddTerminal("R");
  g.SetStart(s);
  g.AddProduction(s, {GSymbol::T(l), GSymbol::T(r)});
  g.AddProduction(s, {GSymbol::T(l), GSymbol::N(s), GSymbol::T(r)});
  g.AddProduction(s, {GSymbol::N(s), GSymbol::N(s)});
  return g;
}

}  // namespace dlcirc
