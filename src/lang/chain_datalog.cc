#include "src/lang/chain_datalog.h"

#include "src/datalog/analysis.h"
#include "src/util/check.h"

namespace dlcirc {

Result<Cfg> ChainProgramToCfg(const Program& program) {
  ProgramAnalysis a = Analyze(program);
  if (!a.is_basic_chain) {
    return Result<Cfg>::Error("program is not basic chain Datalog");
  }
  if (!a.idb_mask[program.target_pred]) {
    return Result<Cfg>::Error("target predicate has no rules (EDB target)");
  }
  Cfg cfg;
  // Intern nonterminals for IDBs, terminals for EDBs, preserving names.
  std::vector<GSymbol> pred_symbol(program.num_preds());
  for (size_t p = 0; p < program.num_preds(); ++p) {
    const std::string& name = program.preds.Name(static_cast<uint32_t>(p));
    pred_symbol[p] = a.idb_mask[p] ? GSymbol::N(cfg.AddNonterminal(name))
                                   : GSymbol::T(cfg.AddTerminal(name));
  }
  cfg.SetStart(pred_symbol[program.target_pred].id);
  for (const Rule& r : program.rules) {
    std::vector<GSymbol> rhs;
    rhs.reserve(r.body.size());
    for (const Atom& atom : r.body) rhs.push_back(pred_symbol[atom.pred]);
    cfg.AddProduction(pred_symbol[r.head.pred].id, std::move(rhs));
  }
  return cfg;
}

Program CfgToChainProgram(const Cfg& cfg) {
  bool start_has_production = false;
  for (const Production& prod : cfg.productions()) {
    if (prod.lhs == cfg.start()) start_has_production = true;
  }
  DLCIRC_CHECK(start_has_production)
      << "start symbol must have a production (else the target would be EDB)";
  Program p;
  // Variable pool: X, Y, Z0..Zk.
  uint32_t x = p.vars.Intern("X"), y = p.vars.Intern("Y");
  std::vector<uint32_t> nt_pred(cfg.num_nonterminals());
  std::vector<uint32_t> t_pred(cfg.num_terminals());
  auto add_pred = [&](const std::string& name) {
    uint32_t id = p.preds.Intern(name);
    if (id >= p.arities.size()) p.arities.resize(id + 1, 2);
    p.arities[id] = 2;
    return id;
  };
  for (size_t i = 0; i < cfg.num_nonterminals(); ++i) {
    nt_pred[i] = add_pred(cfg.nonterminals().Name(static_cast<uint32_t>(i)));
  }
  for (size_t i = 0; i < cfg.num_terminals(); ++i) {
    t_pred[i] = add_pred(cfg.terminals().Name(static_cast<uint32_t>(i)));
  }
  for (const Production& prod : cfg.productions()) {
    Rule rule;
    rule.head = Atom{nt_pred[prod.lhs], {Term::Var(x), Term::Var(y)}};
    uint32_t prev = x;
    for (size_t i = 0; i < prod.rhs.size(); ++i) {
      uint32_t next =
          (i + 1 == prod.rhs.size()) ? y : p.vars.Intern("Z" + std::to_string(i));
      const GSymbol& s = prod.rhs[i];
      uint32_t pred = s.is_terminal ? t_pred[s.id] : nt_pred[s.id];
      rule.body.push_back(Atom{pred, {Term::Var(prev), Term::Var(next)}});
      prev = next;
    }
    p.rules.push_back(std::move(rule));
  }
  p.target_pred = nt_pred[cfg.start()];
  return p;
}

bool IsLeftLinearChain(const Program& program) {
  ProgramAnalysis a = Analyze(program);
  if (!a.is_basic_chain || !a.is_linear) return false;
  for (const Rule& r : program.rules) {
    bool seen_idb = false;
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (a.idb_mask[r.body[i].pred]) {
        if (i != 0) return false;  // IDB must be leftmost
        seen_idb = true;
      }
    }
    (void)seen_idb;
  }
  return true;
}

Result<ChainNfa> LeftLinearChainToNfa(const Program& program) {
  if (!IsLeftLinearChain(program)) {
    return Result<ChainNfa>::Error("program is not a left-linear chain program");
  }
  ProgramAnalysis a = Analyze(program);
  ChainNfa out;
  // Label alphabet: EDB predicates in id order.
  std::vector<uint32_t> edb_label(program.num_preds(), 0);
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (!a.idb_mask[p]) {
      edb_label[p] = static_cast<uint32_t>(out.label_preds.size());
      out.label_preds.push_back(program.preds.Name(static_cast<uint32_t>(p)));
    }
  }
  // States: one per IDB predicate, plus a fresh start state q0 (last id).
  std::vector<uint32_t> idb_state(program.num_preds(), 0);
  uint32_t num_idbs = 0;
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (a.idb_mask[p]) idb_state[p] = num_idbs++;
  }
  out.pred_state.assign(program.num_preds(), ChainNfa::kNoState);
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (a.idb_mask[p]) out.pred_state[p] = idb_state[p];
  }
  out.nfa.num_states = num_idbs + 1;
  out.nfa.start = num_idbs;  // q0
  out.nfa.num_labels = static_cast<uint32_t>(out.label_preds.size());
  out.nfa.accept.assign(out.nfa.num_states, false);
  out.nfa.accept[idb_state[program.target_pred]] = true;
  for (const Rule& r : program.rules) {
    // Rule shapes (chain + left-linear):
    //   A(x,y) :- a1(x,z1), ..., ak(.., y)                 [initialization]
    //   A(x,y) :- B(x,z), a1(z,.), ..., ak(.., y)          [recursive]
    // Multi-terminal bodies thread through fresh intermediate states.
    size_t first = 0;
    uint32_t state;
    if (a.idb_mask[r.body[0].pred]) {
      state = idb_state[r.body[0].pred];
      first = 1;
      DLCIRC_CHECK_LT(first, r.body.size() + 1);
      if (first == r.body.size()) {
        // A(x,y) :- B(x,y): unit rule; epsilon-free NFAs can't express it
        // directly. Chain grammar with unit productions: reject for now.
        return Result<ChainNfa>::Error(
            "unit chain rules (A(x,y) :- B(x,y)) are not supported by the NFA "
            "conversion; eliminate them first");
      }
    } else {
      state = out.nfa.start;
    }
    for (size_t i = first; i < r.body.size(); ++i) {
      DLCIRC_CHECK(!a.idb_mask[r.body[i].pred]);
      uint32_t target;
      if (i + 1 == r.body.size()) {
        target = idb_state[r.head.pred];
      } else {
        target = out.nfa.num_states++;
        out.nfa.accept.push_back(false);
      }
      out.nfa.transitions.push_back({state, edb_label[r.body[i].pred], target});
      state = target;
    }
  }
  return out;
}

}  // namespace dlcirc
