// The chain-Datalog <-> CFG correspondence (Proposition 5.2).
//
// IDB predicates map to nonterminals, EDB predicates to terminals, chain
// rules to productions (body predicate sequence = rhs), the target IDB to
// the start symbol. Left-linear programs (all recursive rules of shape
// T(x,y) :- T'(x,z), a(z,y)...) correspond to regular grammars / RPQs; these
// convert further to an NFA.
#ifndef DLCIRC_LANG_CHAIN_DATALOG_H_
#define DLCIRC_LANG_CHAIN_DATALOG_H_

#include "src/datalog/ast.h"
#include "src/lang/cfg.h"
#include "src/lang/dfa.h"
#include "src/util/result.h"

namespace dlcirc {

/// Program -> CFG. Fails when the program is not basic chain. The CFG's
/// terminal interner reuses the program's EDB predicate names; nonterminals
/// the IDB names.
Result<Cfg> ChainProgramToCfg(const Program& program);

/// CFG -> basic chain Datalog program. Nonterminal A becomes binary IDB A,
/// terminal a becomes binary EDB a; production A -> s1...sk becomes
/// A(x,y) :- s1(x,z1), ..., sk(z_{k-1},y). The start symbol becomes @target.
/// Names are sanitized to valid identifiers if needed.
Program CfgToChainProgram(const Cfg& cfg);

/// True iff every recursive rule is left-linear: the (single) IDB body atom
/// is leftmost (Prop 5.2's regular case).
bool IsLeftLinearChain(const Program& program);

/// Left-linear chain program -> NFA over the EDB label alphabet: production
/// A -> B a gives transition B --a--> A; A -> a gives q0 --a--> A; accept =
/// {target}. Labels are indexed by the order EDB predicates first appear;
/// `label_preds` returns that order. Fails when not left-linear chain.
struct ChainNfa {
  Nfa nfa;
  std::vector<std::string> label_preds;  ///< label id -> EDB predicate name
  /// Program predicate id -> the NFA state representing that IDB predicate
  /// (the state whose q0-to-state path language is L_A); kNoState for EDB
  /// predicates and for the fresh states threading multi-terminal bodies.
  /// Re-targeting `accept` to {pred_state[A]} yields an NFA for L_A — how
  /// the dichotomy planner decides per-predicate finiteness (Theorem 5.9).
  static constexpr uint32_t kNoState = 0xffffffffu;
  std::vector<uint32_t> pred_state;
};
Result<ChainNfa> LeftLinearChainToNfa(const Program& program);

}  // namespace dlcirc

#endif  // DLCIRC_LANG_CHAIN_DATALOG_H_
