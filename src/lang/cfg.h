// Context-free grammars (paper Section 5).
//
// Basic chain Datalog programs correspond to CFGs (Proposition 5.2); the
// boundedness dichotomy of Theorems 5.3/5.4 hinges on deciding *finiteness*
// of the language, and the lower-bound reduction of Theorem 5.11 needs a
// constructive *pumping decomposition* u v w x y with |vx| >= 1.
//
// Grammars here are epsilon-free (chain rule bodies are non-empty); this is
// CHECKed. Unit productions are allowed and handled via closure.
#ifndef DLCIRC_LANG_CFG_H_
#define DLCIRC_LANG_CFG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/util/interner.h"
#include "src/util/result.h"

namespace dlcirc {

/// Grammar symbol: terminal or nonterminal id.
struct GSymbol {
  bool is_terminal;
  uint32_t id;
  static GSymbol T(uint32_t id) { return {true, id}; }
  static GSymbol N(uint32_t id) { return {false, id}; }
  bool operator==(const GSymbol& o) const {
    return is_terminal == o.is_terminal && id == o.id;
  }
};

struct Production {
  uint32_t lhs;  ///< nonterminal id
  std::vector<GSymbol> rhs;
};

/// Pumping decomposition: u v^i w x^i y is in L for all i >= 0, |vx| >= 1.
/// Words are terminal-id sequences.
struct CfgPumping {
  std::vector<uint32_t> u, v, w, x, y;
};

class Cfg {
 public:
  Cfg() = default;

  uint32_t AddNonterminal(const std::string& name) { return nonterminals_.Intern(name); }
  uint32_t AddTerminal(const std::string& name) { return terminals_.Intern(name); }
  void AddProduction(uint32_t lhs, std::vector<GSymbol> rhs);
  void SetStart(uint32_t nt) { start_ = nt; }

  uint32_t start() const { return start_; }
  const std::vector<Production>& productions() const { return productions_; }
  const Interner& nonterminals() const { return nonterminals_; }
  const Interner& terminals() const { return terminals_; }
  size_t num_nonterminals() const { return nonterminals_.size(); }
  size_t num_terminals() const { return terminals_.size(); }

  /// Nonterminals deriving at least one terminal string.
  std::vector<bool> ProductiveNonterminals() const;
  /// Nonterminals reachable from the start in some sentential form.
  std::vector<bool> ReachableNonterminals() const;
  /// Useful = productive and reachable.
  std::vector<bool> UsefulNonterminals() const;

  bool IsEmptyLanguage() const;

  /// Decides |L| < infinity (Prop 5.5's decidable criterion): after unit
  /// closure, L is infinite iff some useful nonterminal lies on a cycle of
  /// the "occurs in a non-unit rhs" graph.
  bool IsFiniteLanguage() const;

  /// Length of a shortest word derivable from each nonterminal
  /// (kNoWord when none).
  static constexpr uint32_t kNoWord = 0xffffffffu;
  std::vector<uint32_t> ShortestYieldLengths() const;

  /// Length of a longest word in L, for the finite side of the dichotomy
  /// (Theorem 5.8's unrolling bound). Empty optional when L is empty or
  /// infinite.
  std::optional<uint32_t> LongestWordLength() const;

  /// A shortest terminal word derivable from `nt`; empty optional when none.
  std::optional<std::vector<uint32_t>> ShortestYield(uint32_t nt) const;

  /// CYK-style recognition (handles unit productions; grammar binarized
  /// internally). Word = terminal ids. The empty word is never accepted
  /// (grammars are epsilon-free).
  bool Accepts(const std::vector<uint32_t>& word) const;

  /// All accepted words of length <= max_len, lexicographically by length,
  /// up to max_count (enumeration by dynamic programming on yields).
  std::vector<std::vector<uint32_t>> EnumerateWords(uint32_t max_len,
                                                    size_t max_count) const;

  /// Constructive pumping lemma: succeeds iff the language is infinite.
  Result<CfgPumping> FindPumping() const;

  /// Chomsky-like normal form (epsilon-free input): every production is
  /// A -> a or A -> B C. Same language; same terminal ids.
  Cfg ToCnf() const { return EliminateUnitProductions().Binarize(); }

  std::string ToString() const;

 private:
  // Internal: grammar with unit productions folded away (same language).
  Cfg EliminateUnitProductions() const;
  // Internal: rhs arity <= 2 via fresh nonterminals (same language).
  Cfg Binarize() const;

  Interner nonterminals_;
  Interner terminals_;
  std::vector<Production> productions_;
  uint32_t start_ = 0;
};

/// Dyck-1 grammar S -> L R | L S R | S S (Example 6.4), terminals {L, R}.
Cfg MakeDyck1Cfg();

/// Parses a grammar from text, one production per line with `|` alternatives
/// and `%` comments to end of line:
///
///   S -> L R | L S R
///   S -> S S
///
/// Symbols are identifiers ([A-Za-z0-9_]); a symbol is a nonterminal iff it
/// appears on some left-hand side, otherwise a terminal. The first LHS is
/// the start symbol. Empty right-hand sides are an error (grammars here are
/// epsilon-free). Errors mention the offending line (and column when the
/// offending token is recoverable); when `diagnostic` is non-null a failed
/// parse additionally fills it with the structured span-carrying form
/// (code parse.grammar), as in ParseProgram.
Result<Cfg> ParseCfgText(std::string_view text,
                         analysis::Diagnostic* diagnostic = nullptr);

}  // namespace dlcirc

#endif  // DLCIRC_LANG_CFG_H_
