#include "src/lang/dfa.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "src/util/check.h"

namespace dlcirc {

Dfa::Dfa(uint32_t num_states, uint32_t num_labels, uint32_t start,
         std::vector<bool> accept, std::vector<std::vector<int32_t>> delta)
    : num_labels_(num_labels),
      start_(start),
      accept_(std::move(accept)),
      delta_(std::move(delta)) {
  DLCIRC_CHECK_EQ(accept_.size(), num_states);
  DLCIRC_CHECK_EQ(delta_.size(), num_states);
  for (const auto& row : delta_) DLCIRC_CHECK_EQ(row.size(), num_labels_);
}

Dfa Dfa::Determinize(const Nfa& nfa) {
  DLCIRC_CHECK_GT(nfa.num_states, 0u);
  // Transition index: state -> label -> targets.
  std::vector<std::vector<std::vector<uint32_t>>> idx(
      nfa.num_states, std::vector<std::vector<uint32_t>>(nfa.num_labels));
  for (const Nfa::Transition& t : nfa.transitions) {
    idx[t.from][t.label].push_back(t.to);
  }
  std::map<std::set<uint32_t>, uint32_t> subset_id;
  std::vector<std::set<uint32_t>> subsets;
  std::vector<std::vector<int32_t>> delta;
  std::vector<bool> accept;
  auto intern = [&](const std::set<uint32_t>& s) -> uint32_t {
    auto it = subset_id.find(s);
    if (it != subset_id.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(subsets.size());
    subset_id[s] = id;
    subsets.push_back(s);
    delta.emplace_back(nfa.num_labels, kDead);
    bool acc = false;
    for (uint32_t q : s) acc = acc || nfa.accept[q];
    accept.push_back(acc);
    return id;
  };
  uint32_t start = intern({nfa.start});
  for (uint32_t cur = 0; cur < subsets.size(); ++cur) {
    for (uint32_t l = 0; l < nfa.num_labels; ++l) {
      std::set<uint32_t> next;
      for (uint32_t q : subsets[cur]) {
        for (uint32_t r : idx[q][l]) next.insert(r);
      }
      if (!next.empty()) delta[cur][l] = static_cast<int32_t>(intern(next));
    }
  }
  return Dfa(static_cast<uint32_t>(subsets.size()), nfa.num_labels, start,
             std::move(accept), std::move(delta));
}

bool Dfa::Accepts(const std::vector<uint32_t>& word) const {
  int32_t q = static_cast<int32_t>(start_);
  for (uint32_t a : word) {
    DLCIRC_CHECK_LT(a, num_labels_);
    q = delta_[q][a];
    if (q == kDead) return false;
  }
  return accept_[q];
}

Dfa Dfa::Minimize() const {
  // Complete with a dead state, refine partitions (Moore), trim back.
  uint32_t n = num_states() + 1;  // last = dead
  uint32_t dead = n - 1;
  auto next = [&](uint32_t q, uint32_t l) -> uint32_t {
    if (q == dead) return dead;
    int32_t t = delta_[q][l];
    return t == kDead ? dead : static_cast<uint32_t>(t);
  };
  std::vector<uint32_t> cls(n);
  for (uint32_t q = 0; q < n; ++q) cls[q] = (q != dead && accept_[q]) ? 1 : 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (class, classes of successors).
    std::map<std::vector<uint32_t>, uint32_t> sig_to_class;
    std::vector<uint32_t> next_cls(n);
    for (uint32_t q = 0; q < n; ++q) {
      std::vector<uint32_t> sig = {cls[q]};
      for (uint32_t l = 0; l < num_labels_; ++l) sig.push_back(cls[next(q, l)]);
      auto [it, inserted] = sig_to_class.emplace(sig, static_cast<uint32_t>(sig_to_class.size()));
      next_cls[q] = it->second;
    }
    if (next_cls != cls) {
      cls = std::move(next_cls);
      changed = true;
    }
  }
  // Build quotient, dropping the dead state's class unless some live state
  // shares it (it cannot: dead is non-accepting with self loops only; a
  // live state in its class is equivalent to dead and can be dropped too).
  uint32_t dead_cls = cls[dead];
  std::map<uint32_t, uint32_t> remap;  // class -> new id
  for (uint32_t q = 0; q < n - 1; ++q) {
    if (cls[q] == dead_cls) continue;
    if (!remap.count(cls[q])) {
      uint32_t id = static_cast<uint32_t>(remap.size());
      remap[cls[q]] = id;
    }
  }
  if (!remap.count(cls[start_])) {
    // Start state is dead-equivalent: language empty; single-state DFA.
    return Dfa(1, num_labels_, 0, {false},
               {std::vector<int32_t>(num_labels_, kDead)});
  }
  uint32_t m = static_cast<uint32_t>(remap.size());
  std::vector<bool> accept(m, false);
  std::vector<std::vector<int32_t>> delta(m, std::vector<int32_t>(num_labels_, kDead));
  for (uint32_t q = 0; q < n - 1; ++q) {
    if (cls[q] == dead_cls) continue;
    uint32_t id = remap[cls[q]];
    if (accept_[q]) accept[id] = true;
    for (uint32_t l = 0; l < num_labels_; ++l) {
      uint32_t t = next(q, l);
      if (t != dead && cls[t] != dead_cls) delta[id][l] = static_cast<int32_t>(remap[cls[t]]);
    }
  }
  return Dfa(m, num_labels_, remap[cls[start_]], std::move(accept), std::move(delta));
}

std::vector<bool> Dfa::UsefulStates() const {
  uint32_t n = num_states();
  // Forward reachability.
  std::vector<bool> fwd(n, false);
  std::vector<uint32_t> stack = {start_};
  fwd[start_] = true;
  while (!stack.empty()) {
    uint32_t q = stack.back();
    stack.pop_back();
    for (uint32_t l = 0; l < num_labels_; ++l) {
      int32_t t = delta_[q][l];
      if (t != kDead && !fwd[t]) {
        fwd[t] = true;
        stack.push_back(static_cast<uint32_t>(t));
      }
    }
  }
  // Backward from accepting states.
  std::vector<std::vector<uint32_t>> preds(n);
  for (uint32_t q = 0; q < n; ++q) {
    for (uint32_t l = 0; l < num_labels_; ++l) {
      int32_t t = delta_[q][l];
      if (t != kDead) preds[t].push_back(q);
    }
  }
  std::vector<bool> bwd(n, false);
  for (uint32_t q = 0; q < n; ++q) {
    if (accept_[q] && !bwd[q]) {
      bwd[q] = true;
      stack.push_back(q);
    }
  }
  while (!stack.empty()) {
    uint32_t q = stack.back();
    stack.pop_back();
    for (uint32_t p : preds[q]) {
      if (!bwd[p]) {
        bwd[p] = true;
        stack.push_back(p);
      }
    }
  }
  std::vector<bool> useful(n, false);
  for (uint32_t q = 0; q < n; ++q) useful[q] = fwd[q] && bwd[q];
  return useful;
}

bool Dfa::IsEmptyLanguage() const {
  std::vector<bool> useful = UsefulStates();
  return std::none_of(useful.begin(), useful.end(), [](bool b) { return b; });
}

bool Dfa::IsFiniteLanguage() const {
  // Infinite iff a useful state lies on a cycle within useful states.
  std::vector<bool> useful = UsefulStates();
  uint32_t n = num_states();
  std::vector<uint8_t> color(n, 0);
  for (uint32_t s = 0; s < n; ++s) {
    if (!useful[s] || color[s] != 0) continue;
    std::vector<std::pair<uint32_t, uint32_t>> stack = {{s, 0}};
    color[s] = 1;
    while (!stack.empty()) {
      auto& [q, l] = stack.back();
      if (l < num_labels_) {
        int32_t t = delta_[q][l++];
        if (t == kDead || !useful[t]) continue;
        if (color[t] == 1) return false;
        if (color[t] == 0) {
          color[t] = 1;
          stack.push_back({static_cast<uint32_t>(t), 0});
        }
      } else {
        color[q] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

uint32_t Dfa::LongestAcceptedWordLength() const {
  DLCIRC_CHECK(IsFiniteLanguage()) << "longest word undefined for infinite language";
  std::vector<bool> useful = UsefulStates();
  uint32_t n = num_states();
  // Longest path in the useful-state DAG from start to any accepting state.
  // DP over topological order via memoized DFS (acyclic by finiteness).
  std::vector<int64_t> memo(n, -2);  // -2 unvisited; value = longest suffix
  std::function<int64_t(uint32_t)> longest = [&](uint32_t q) -> int64_t {
    if (memo[q] != -2) return memo[q];
    int64_t best = accept_[q] ? 0 : -1;  // -1: no accepting continuation
    for (uint32_t l = 0; l < num_labels_; ++l) {
      int32_t t = delta_[q][l];
      if (t == kDead || !useful[t]) continue;
      int64_t sub = longest(static_cast<uint32_t>(t));
      if (sub >= 0) best = std::max(best, 1 + sub);
    }
    return memo[q] = best;
  };
  if (!useful[start_]) return 0;
  int64_t len = longest(start_);
  return len < 0 ? 0 : static_cast<uint32_t>(len);
}

Result<DfaPumping> Dfa::FindPumping() const {
  if (IsFiniteLanguage()) {
    return Result<DfaPumping>::Error("language is finite: no pumping exists");
  }
  std::vector<bool> useful = UsefulStates();
  uint32_t n = num_states();
  // Find a useful state on a cycle, with the cycle word, via DFS.
  // path_word[q]: word along the DFS path from start of this DFS tree.
  std::vector<uint8_t> color(n, 0);
  std::vector<int32_t> parent(n, -1);
  std::vector<uint32_t> parent_label(n, 0);
  uint32_t cyc_from = 0, cyc_to = 0, cyc_label = 0;
  bool found = false;
  std::function<void(uint32_t)> dfs = [&](uint32_t q) {
    color[q] = 1;
    for (uint32_t l = 0; l < num_labels_ && !found; ++l) {
      int32_t t = delta_[q][l];
      if (t == kDead || !useful[t]) continue;
      if (color[t] == 1) {
        cyc_from = q;
        cyc_to = static_cast<uint32_t>(t);
        cyc_label = l;
        found = true;
        return;
      }
      if (color[t] == 0) {
        parent[t] = static_cast<int32_t>(q);
        parent_label[t] = l;
        dfs(static_cast<uint32_t>(t));
        if (found) return;
      }
    }
    color[q] = 2;
  };
  for (uint32_t s = 0; s < n && !found; ++s) {
    if (useful[s] && color[s] == 0 && s == start_) dfs(s);
  }
  // The cycle might not be reachable in the DFS from start_ only if start_
  // is not useful — but then the language would be empty (finite).
  if (!found) {
    for (uint32_t s = 0; s < n && !found; ++s) {
      if (useful[s] && color[s] == 0) dfs(s);
    }
  }
  DLCIRC_CHECK(found);
  // y: word along tree path cyc_to ->* cyc_from, then cyc_label.
  DfaPumping out;
  std::vector<uint32_t> rev;
  for (uint32_t q = cyc_from; q != cyc_to;) {
    rev.push_back(parent_label[q]);
    DLCIRC_CHECK_GE(parent[q], 0);
    q = static_cast<uint32_t>(parent[q]);
  }
  out.y.assign(rev.rbegin(), rev.rend());
  out.y.push_back(cyc_label);
  // x: BFS shortest word start -> cyc_to.
  std::vector<int32_t> bfs_parent(n, -1);
  std::vector<uint32_t> bfs_label(n, 0);
  std::vector<bool> vis(n, false);
  std::vector<uint32_t> queue = {start_};
  vis[start_] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    uint32_t q = queue[qi];
    for (uint32_t l = 0; l < num_labels_; ++l) {
      int32_t t = delta_[q][l];
      if (t == kDead || vis[t]) continue;
      vis[t] = true;
      bfs_parent[t] = static_cast<int32_t>(q);
      bfs_label[t] = l;
      queue.push_back(static_cast<uint32_t>(t));
    }
  }
  DLCIRC_CHECK(vis[cyc_to]);
  rev.clear();
  for (uint32_t q = cyc_to; q != start_;) {
    rev.push_back(bfs_label[q]);
    q = static_cast<uint32_t>(bfs_parent[q]);
  }
  out.x.assign(rev.rbegin(), rev.rend());
  // z: BFS shortest word cyc_to -> some accepting state.
  vis.assign(n, false);
  bfs_parent.assign(n, -1);
  queue = {cyc_to};
  vis[cyc_to] = true;
  int32_t acc = accept_[cyc_to] ? static_cast<int32_t>(cyc_to) : -1;
  for (size_t qi = 0; qi < queue.size() && acc < 0; ++qi) {
    uint32_t q = queue[qi];
    for (uint32_t l = 0; l < num_labels_; ++l) {
      int32_t t = delta_[q][l];
      if (t == kDead || vis[t]) continue;
      vis[t] = true;
      bfs_parent[t] = static_cast<int32_t>(q);
      bfs_label[t] = l;
      queue.push_back(static_cast<uint32_t>(t));
      if (accept_[t]) {
        acc = t;
        break;
      }
    }
  }
  DLCIRC_CHECK_GE(acc, 0) << "cycle state must be co-reachable";
  rev.clear();
  for (uint32_t q = static_cast<uint32_t>(acc); q != cyc_to;) {
    rev.push_back(bfs_label[q]);
    q = static_cast<uint32_t>(bfs_parent[q]);
  }
  out.z.assign(rev.rbegin(), rev.rend());
  DLCIRC_CHECK_GE(out.y.size(), 1u);
  return out;
}

std::vector<std::vector<uint32_t>> Dfa::EnumerateWords(uint32_t max_len,
                                                       size_t max_count) const {
  std::vector<std::vector<uint32_t>> out;
  // BFS over (state, word) by length.
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> frontier = {{start_, {}}};
  if (accept_[start_]) out.push_back({});
  for (uint32_t len = 1; len <= max_len && out.size() < max_count; ++len) {
    std::vector<std::pair<uint32_t, std::vector<uint32_t>>> next;
    for (const auto& [q, w] : frontier) {
      for (uint32_t l = 0; l < num_labels_; ++l) {
        int32_t t = delta_[q][l];
        if (t == kDead) continue;
        std::vector<uint32_t> w2 = w;
        w2.push_back(l);
        if (accept_[t] && out.size() < max_count) out.push_back(w2);
        next.emplace_back(static_cast<uint32_t>(t), std::move(w2));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

std::string Dfa::ToString() const {
  std::ostringstream ss;
  ss << "start=" << start_ << " states=" << num_states() << "\n";
  for (uint32_t q = 0; q < num_states(); ++q) {
    ss << q << (accept_[q] ? "*" : " ") << ":";
    for (uint32_t l = 0; l < num_labels_; ++l) {
      if (delta_[q][l] != kDead) ss << " " << l << "->" << delta_[q][l];
    }
    ss << "\n";
  }
  return ss.str();
}

GraphDfaProduct BuildGraphDfaProduct(const LabeledGraph& g, const Dfa& dfa) {
  GraphDfaProduct out{LabeledGraph(g.num_vertices() * dfa.num_states(), 1),
                      {},
                      dfa.num_states()};
  for (uint32_t ei = 0; ei < g.num_edges(); ++ei) {
    const LabeledEdge& e = g.edge(ei);
    for (uint32_t q = 0; q < dfa.num_states(); ++q) {
      int32_t q2 = dfa.Next(q, e.label);
      if (q2 == Dfa::kDead) continue;
      out.graph.AddEdge(out.VertexOf(e.src, q),
                        out.VertexOf(e.dst, static_cast<uint32_t>(q2)), 0);
      out.edge_origin.push_back(ei);
    }
  }
  return out;
}

}  // namespace dlcirc
