#include "src/constructions/finite_rpq_circuit.h"

#include "src/util/check.h"

namespace dlcirc {

std::vector<std::vector<GateId>> FiniteRpqReachTerms(
    CircuitBuilder& b, const LabeledGraph& graph,
    const std::vector<std::vector<uint32_t>>& in_edges,
    const std::vector<uint32_t>& edge_vars, const Dfa& dfa, uint32_t s) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  DLCIRC_CHECK_EQ(in_edges.size(), graph.num_vertices());
  DLCIRC_CHECK_GE(dfa.num_labels(), graph.num_labels());
  uint32_t k_max = dfa.LongestAcceptedWordLength();  // CHECKs finiteness
  uint32_t nq = dfa.num_states();
  uint32_t nv = graph.num_vertices();

  auto slot = [&](uint32_t q, uint32_t v) { return q * nv + v; };
  std::vector<GateId> cur(nq * nv, b.Zero());
  cur[slot(dfa.start(), s)] = b.One();

  std::vector<std::vector<GateId>> accept_terms(nv);
  auto harvest = [&]() {
    for (uint32_t q = 0; q < nq; ++q) {
      if (!dfa.accept(q)) continue;
      for (uint32_t v = 0; v < nv; ++v) {
        if (cur[slot(q, v)] != b.Zero()) {
          accept_terms[v].push_back(cur[slot(q, v)]);
        }
      }
    }
  };
  harvest();  // length-0 match (empty word) when q0 is accepting
  std::vector<GateId> terms;
  for (uint32_t step = 1; step <= k_max; ++step) {
    std::vector<GateId> next(nq * nv, b.Zero());
    for (uint32_t v = 0; v < nv; ++v) {
      for (uint32_t q = 0; q < nq; ++q) {
        terms.clear();
        // val(q, v) from edges (u, v) with some q' -label-> q.
        for (uint32_t ei : in_edges[v]) {
          const LabeledEdge& e = graph.edge(ei);
          for (uint32_t qp = 0; qp < nq; ++qp) {
            if (dfa.Next(qp, e.label) != static_cast<int32_t>(q)) continue;
            if (cur[slot(qp, e.src)] == b.Zero()) continue;
            terms.push_back(b.Times(cur[slot(qp, e.src)], b.Input(edge_vars[ei])));
          }
        }
        next[slot(q, v)] = b.PlusN(terms);
      }
    }
    cur = std::move(next);
    harvest();
  }
  return accept_terms;
}

Result<Circuit> FiniteRpqCircuit(const LabeledGraph& graph,
                                 const std::vector<uint32_t>& edge_vars,
                                 uint32_t num_vars, const Dfa& dfa, uint32_t s,
                                 uint32_t t) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  if (!dfa.IsFiniteLanguage()) {
    return Result<Circuit>::Error("FiniteRpqCircuit requires a finite language");
  }
  CircuitBuilder b(num_vars);  // any-semiring: no absorptive rewrites
  std::vector<std::vector<GateId>> terms =
      FiniteRpqReachTerms(b, graph, graph.InEdgeIndex(), edge_vars, dfa, s);
  return b.Build({b.PlusN(terms[t])});
}

}  // namespace dlcirc
