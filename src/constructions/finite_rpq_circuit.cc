#include "src/constructions/finite_rpq_circuit.h"

#include "src/util/check.h"

namespace dlcirc {

Result<Circuit> FiniteRpqCircuit(const LabeledGraph& graph,
                                 const std::vector<uint32_t>& edge_vars,
                                 uint32_t num_vars, const Dfa& dfa, uint32_t s,
                                 uint32_t t) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  DLCIRC_CHECK_GE(dfa.num_labels(), graph.num_labels());
  if (!dfa.IsFiniteLanguage()) {
    return Result<Circuit>::Error("FiniteRpqCircuit requires a finite language");
  }
  uint32_t k_max = dfa.LongestAcceptedWordLength();
  uint32_t nq = dfa.num_states();
  uint32_t nv = graph.num_vertices();
  CircuitBuilder b(num_vars);  // any-semiring: no absorptive rewrites

  auto in = graph.InEdgeIndex();
  auto slot = [&](uint32_t q, uint32_t v) { return q * nv + v; };
  std::vector<GateId> cur(nq * nv, b.Zero());
  cur[slot(dfa.start(), s)] = b.One();

  std::vector<GateId> accept_terms;
  auto harvest = [&]() {
    for (uint32_t q = 0; q < nq; ++q) {
      if (dfa.accept(q) && cur[slot(q, t)] != b.Zero()) {
        accept_terms.push_back(cur[slot(q, t)]);
      }
    }
  };
  harvest();  // length-0 match (empty word) when s == t and q0 accepting
  std::vector<GateId> terms;
  for (uint32_t step = 1; step <= k_max; ++step) {
    std::vector<GateId> next(nq * nv, b.Zero());
    for (uint32_t v = 0; v < nv; ++v) {
      for (uint32_t q = 0; q < nq; ++q) {
        terms.clear();
        // val(q, v) from edges (u, v) with some q' -label-> q.
        for (uint32_t ei : in[v]) {
          const LabeledEdge& e = graph.edge(ei);
          for (uint32_t qp = 0; qp < nq; ++qp) {
            if (dfa.Next(qp, e.label) != static_cast<int32_t>(q)) continue;
            if (cur[slot(qp, e.src)] == b.Zero()) continue;
            terms.push_back(b.Times(cur[slot(qp, e.src)], b.Input(edge_vars[ei])));
          }
        }
        next[slot(q, v)] = b.PlusN(terms);
      }
    }
    cur = std::move(next);
    harvest();
  }
  return b.Build({b.PlusN(accept_terms)});
}

}  // namespace dlcirc
