#include "src/constructions/grounded_circuit.h"

namespace dlcirc {

GroundedCircuitResult GroundedProgramCircuit(const GroundedProgram& g,
                                             const GroundedCircuitOptions& options) {
  uint32_t max_layers =
      options.max_layers == 0 ? g.num_idb_facts() + 1 : options.max_layers;
  CircuitBuilder b(g.num_edb_vars(), options.builder);

  std::vector<GateId> cur(g.num_idb_facts(), b.Zero());
  GroundedCircuitResult result;
  for (uint32_t layer = 1; layer <= max_layers; ++layer) {
    std::vector<GateId> next(g.num_idb_facts(), b.Zero());
    std::vector<GateId> terms;
    std::vector<GateId> factors;
    for (uint32_t fact = 0; fact < g.num_idb_facts(); ++fact) {
      terms.clear();
      for (uint32_t rid : g.RulesOfHead(fact)) {
        const GroundRule& rule = g.rules()[rid];
        factors.clear();
        bool dead = false;
        for (uint32_t bf : rule.body_idbs) {
          if (cur[bf] == b.Zero()) {
            dead = true;
            break;
          }
          factors.push_back(cur[bf]);
        }
        if (dead) continue;
        for (uint32_t v : rule.body_edbs) factors.push_back(b.Input(v));
        terms.push_back(b.TimesN(factors));
      }
      next[fact] = b.PlusN(terms);
    }
    result.layers_used = layer;
    if (options.stop_at_structural_fixpoint && next == cur) {
      result.reached_structural_fixpoint = true;
      result.layers_used = layer - 1;
      break;
    }
    cur = std::move(next);
  }
  std::vector<GateId> outputs(cur.begin(), cur.end());
  result.circuit = b.Build(std::move(outputs));
  return result;
}

}  // namespace dlcirc
