// Theorem 6.2: the Ullman-Van Gelder construction. For Datalog programs
// with the polynomial fringe property (all tight proof trees have poly(m)
// leaves — e.g. every linear program, Corollary 6.3, and Dyck-1 reachability,
// Example 6.4), a circuit of polynomial size and depth O(log^2 |I|).
//
// The circuit maintains a weighted digraph G over IDB-fact ids plus a
// special id <0>. Per stage k (paper notation):
//   1. G1(0,a)  = sum over rules a :- b1..bn, g1..gm of
//                 prod_i G^{(k-1)}(0,bi) (x) prod_j x_{gj}
//   2. G1(d,a)  = sum over rules containing d in the body, per occurrence,
//                 of prod_{other i} G1^{(k)}(0,bi) (x) prod_j x_{gj}
//   3. G2       = G^{(k-1)} (+) G1
//   4. G^{(k)}  = G2 (+) one step of path doubling: G2(a,c) (x) G2(c,b)
// After K = O(log fringe_bound) stages, G^{(K)}(0,a) computes the provenance
// of fact a over any absorptive semiring. Each stage is O(log) depth (sums
// in balanced trees; the doubling squares derivation-tree coverage), giving
// total depth O(log m * log fringe) = O(log^2 m) for polynomial fringes.
//
// The graph is kept sparse: absent entries are the constant 0.
#ifndef DLCIRC_CONSTRUCTIONS_UVG_CIRCUIT_H_
#define DLCIRC_CONSTRUCTIONS_UVG_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/circuit.h"
#include "src/datalog/grounding.h"

namespace dlcirc {

struct UvgOptions {
  /// Number of stages; 0 selects ceil(log_{4/3}(fringe_bound)) + 1.
  uint32_t stages = 0;
  /// Upper bound on tight-proof-tree size used to pick the default stage
  /// count; 0 selects (num_idb_facts + 1) * (max rule body size + 1), the
  /// bound valid for linear programs and word-path chain instances.
  uint64_t fringe_bound = 0;
};

struct UvgResult {
  Circuit circuit;
  /// circuit.outputs()[i] computes the provenance of IDB fact i.
  uint32_t stages_used = 0;
};

UvgResult UvgCircuit(const GroundedProgram& g, const UvgOptions& options = {});

}  // namespace dlcirc

#endif  // DLCIRC_CONSTRUCTIONS_UVG_CIRCUIT_H_
