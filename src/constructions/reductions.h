// The instance- and circuit-level reductions behind the paper's lower
// bounds:
//
//   BuildTcToRpqInstance   (Theorem 5.9, first direction)  TC -> infinite
//     regular language: expand every edge into a pumped-word gadget; a
//     circuit for the RPQ on the gadget instance, with inputs rewired (one
//     designated gadget edge -> the original edge variable, the rest -> 1),
//     computes the TC provenance polynomial — transferring the Omega(log^2)
//     depth bound from TC (Theorem 3.4) to the RPQ.
//
//   RpqViaProductCircuit   (Theorem 5.9, second direction)  RPQ -> TC: run a
//     TC construction on the graph x DFA product, sharing each original
//     edge's variable across its product copies, and sum over accept states;
//     the RPQ therefore has the same circuit size/depth complexity as TC.
//
//   BuildTcToCfgInstance   (Theorem 5.11)  TC restricted to layered graphs
//     (where all s-t paths have the same length) -> an unbounded CFG via the
//     CFG pumping decomposition u v^i w x^i y.
#ifndef DLCIRC_CONSTRUCTIONS_REDUCTIONS_H_
#define DLCIRC_CONSTRUCTIONS_REDUCTIONS_H_

#include <cstdint>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/circuit.h"
#include "src/graph/generators.h"
#include "src/graph/labeled_graph.h"
#include "src/lang/cfg.h"
#include "src/lang/dfa.h"
#include "src/util/result.h"

namespace dlcirc {

/// A labeled hard instance produced from a TC instance, together with the
/// input substitution that transfers a circuit for the labeled problem back
/// to a circuit for TC provenance (paper: "one fact gets the value of the
/// variable, the remaining facts are set to 1").
struct LabeledReductionInstance {
  LabeledGraph labeled = LabeledGraph(0, 1);
  uint32_t s_bar = 0;
  uint32_t t_bar = 0;
  /// One entry per labeled edge: Var(original edge) or One.
  std::vector<InputSubstitution> edge_subs;
  /// Number of variables of the original TC instance (== its edge count).
  uint32_t num_tc_vars = 0;
};

/// Theorem 5.9 (TC -> RPQ). `pump` must satisfy x y^i z in L for all i >= 0.
/// Every edge of `g.graph` becomes a |y|-edge gadget whose FIRST edge
/// carries the original variable; a prefix path labeled x hangs off s and a
/// suffix path labeled z off t.
LabeledReductionInstance BuildTcToRpqInstance(const StGraph& g,
                                              const DfaPumping& pump,
                                              uint32_t num_labels);

/// Theorem 5.11 (TC -> CFG) for instances where every s-t path has exactly
/// `path_len` edges (layered graphs): prefix u v? — per the paper, prefix
/// p := u v attaches to s, every edge expands to the word v, and the suffix
/// q := w x^{path_len+1} y attaches to t, so an s-t path reads
/// u v^{path_len+1} w x^{path_len+1} y, which pumping puts in L.
Result<LabeledReductionInstance> BuildTcToCfgInstance(const StGraph& g,
                                                      uint32_t path_len,
                                                      const CfgPumping& pump,
                                                      uint32_t num_labels);

/// Theorem 5.9 (RPQ -> TC). Builds the provenance circuit for the RPQ fact
/// T(s,t) over `dfa` by repeated squaring on the graph x DFA product with
/// shared edge variables (edge i of `graph` -> variable edge_vars[i]),
/// summing over accept states.
Circuit RpqViaProductCircuit(const LabeledGraph& graph,
                             const std::vector<uint32_t>& edge_vars,
                             uint32_t num_vars, const Dfa& dfa, uint32_t s,
                             uint32_t t);

}  // namespace dlcirc

#endif  // DLCIRC_CONSTRUCTIONS_REDUCTIONS_H_
