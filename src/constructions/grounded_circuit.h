// The generic provenance circuit of Deutch et al. (Theorem 3.1) and its
// bounded-program specialization (Theorem 4.3) / UCQ case (Proposition 3.7).
//
// The circuit has K layers, each encoding one application of the immediate
// consequence operator to the grounded program: layer k's gate for IDB fact
// a is the balanced (+)-sum over a's grounded rules of the balanced
// (x)-product of layer k-1 body gates and EDB input variables.
//
//   * K = num_idb_facts + 1 (default) is always sufficient over absorptive
//     semirings (see engine.h), giving Theorem 3.1's polynomial size.
//   * A bounded program reaches its fixpoint at a constant K, giving
//     Theorem 4.3's O(log |I|) depth: constant layers x O(log) fan-in trees.
//   * A non-recursive program (UCQ after unfolding) stabilizes at
//     K = #strata and the circuit is valid over ANY semiring when built with
//     non-absorptive options (Proposition 3.7).
//
// Hash-consing makes consecutive identical layers structurally equal, so the
// builder detects the (structural) fixpoint and stops early; layers_used
// reports the count, which doubles as an empirical boundedness observable.
#ifndef DLCIRC_CONSTRUCTIONS_GROUNDED_CIRCUIT_H_
#define DLCIRC_CONSTRUCTIONS_GROUNDED_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/circuit.h"
#include "src/datalog/grounding.h"

namespace dlcirc {

struct GroundedCircuitOptions {
  /// 0 selects num_idb_facts + 1 (the absorptive-safe bound).
  uint32_t max_layers = 0;
  /// Builder rewrites; set absorptive=false for the any-semiring UCQ case.
  CircuitBuilder::Options builder;
  /// Stop as soon as a layer is structurally identical to the previous one.
  bool stop_at_structural_fixpoint = true;

  GroundedCircuitOptions() { builder.absorptive = true; }
};

struct GroundedCircuitResult {
  Circuit circuit;
  /// circuit.outputs()[i] computes the provenance of IDB fact i.
  uint32_t layers_used = 0;
  /// True when the last layer equaled the previous one (structural fixpoint
  /// reached before the layer bound).
  bool reached_structural_fixpoint = false;
};

GroundedCircuitResult GroundedProgramCircuit(const GroundedProgram& g,
                                             const GroundedCircuitOptions& options =
                                                 GroundedCircuitOptions());

}  // namespace dlcirc

#endif  // DLCIRC_CONSTRUCTIONS_GROUNDED_CIRCUIT_H_
