// Circuits for transitive-closure provenance over graphs:
//
//   LayeredGraphCircuit    Theorem 3.5  — the DAG itself as a circuit:
//                          size O(m), depth O(path length * log indegree).
//   BellmanFordCircuit     Theorem 5.6  — layered Bellman-Ford relaxation:
//                          size O(mn), depth O(n log n).
//   RepeatedSquaringCircuit Theorem 5.7 — min-plus matrix powering by
//                          repeated squaring: size O(n^3 log n), depth
//                          O(log^2 n); the absorptive analogue of TC in NC2.
//
// All three compute, for requested (s, t) pairs, the provenance polynomial
// of TC's fact T(s,t): the sum over s->t paths of the product of edge
// variables (absorption collapses non-simple walks). Edge variables are
// caller-supplied via `edge_vars` (edge index -> variable id) so reductions
// can share variables across edge copies; the *Identity overloads use
// edge i -> variable i.
#ifndef DLCIRC_CONSTRUCTIONS_PATH_CIRCUITS_H_
#define DLCIRC_CONSTRUCTIONS_PATH_CIRCUITS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/circuit.h"
#include "src/graph/generators.h"
#include "src/graph/labeled_graph.h"
#include "src/util/result.h"

namespace dlcirc {

/// Theorem 3.5. Requires an acyclic graph (CHECKed): gate(v) = sum over
/// in-edges (u,v) of gate(u) (x) x_edge, gate(s) = 1; output gate(t).
/// Valid over ANY semiring (a DAG has finitely many paths); built with
/// the given options.
Circuit LayeredGraphCircuit(const LabeledGraph& graph,
                            const std::vector<uint32_t>& edge_vars,
                            uint32_t num_vars, uint32_t s, uint32_t t,
                            CircuitBuilder::Options options);
Circuit LayeredGraphCircuitIdentity(const StGraph& g);

/// Theorem 5.6. `layers` defaults (0) to n-1. Absorptive semirings only.
Circuit BellmanFordCircuit(const LabeledGraph& graph,
                           const std::vector<uint32_t>& edge_vars,
                           uint32_t num_vars, uint32_t s, uint32_t t,
                           uint32_t layers = 0);
Circuit BellmanFordCircuitIdentity(const StGraph& g, uint32_t layers = 0);

/// Theorem 5.6, multi-output: one relaxation vector per distinct source,
/// output i the provenance of all s_i -> t_i walks of length >= 1. Unlike
/// the single-output form, s == t is allowed — the output is then the sum
/// over closed walks through s, which is what TC's T(v,v) denotes on cyclic
/// graphs — so `layers` defaults (0) to n (covers every simple cycle, not
/// just every simple path). Absorptive semirings only.
Circuit BellmanFordCircuitMulti(
    const LabeledGraph& graph, const std::vector<uint32_t>& edge_vars,
    uint32_t num_vars,
    const std::vector<std::pair<uint32_t, uint32_t>>& outputs,
    uint32_t layers = 0);

/// Theorem 5.7. One circuit, one output per requested (s,t) pair (s != t).
/// Absorptive semirings only. Sparse rows are exploited; the dense bound
/// O(n^3 log n) remains the worst case.
Circuit RepeatedSquaringCircuit(const LabeledGraph& graph,
                                const std::vector<uint32_t>& edge_vars,
                                uint32_t num_vars,
                                const std::vector<std::pair<uint32_t, uint32_t>>& outputs);
Circuit RepeatedSquaringCircuitIdentity(const StGraph& g);

}  // namespace dlcirc

#endif  // DLCIRC_CONSTRUCTIONS_PATH_CIRCUITS_H_
