#include "src/constructions/reductions.h"

#include "src/constructions/path_circuits.h"
#include "src/util/check.h"

namespace dlcirc {

namespace {

// Appends a fresh path spelling `word` from `from`; returns the final
// vertex. All its edges substitute to One.
uint32_t AppendConstantPath(LabeledReductionInstance& inst, uint32_t from,
                            const std::vector<uint32_t>& word) {
  uint32_t cur = from;
  for (uint32_t label : word) {
    uint32_t next = inst.labeled.AddVertices(1);
    inst.labeled.AddEdge(cur, next, label);
    inst.edge_subs.push_back(InputSubstitution::One());
    cur = next;
  }
  return cur;
}

// Prepends a fresh path spelling `word` INTO `to`; returns the initial
// vertex. All its edges substitute to One.
uint32_t PrependConstantPath(LabeledReductionInstance& inst, uint32_t to,
                             const std::vector<uint32_t>& word) {
  if (word.empty()) return to;
  uint32_t first = inst.labeled.AddVertices(1);
  uint32_t cur = first;
  for (size_t i = 0; i < word.size(); ++i) {
    uint32_t next = (i + 1 == word.size()) ? to : inst.labeled.AddVertices(1);
    inst.labeled.AddEdge(cur, next, word[i]);
    inst.edge_subs.push_back(InputSubstitution::One());
    cur = next;
  }
  return first;
}

// Expands every original edge into a gadget path spelling `word`; the first
// gadget edge carries the original edge's variable.
void ExpandEdges(LabeledReductionInstance& inst, const StGraph& g,
                 const std::vector<uint32_t>& word) {
  DLCIRC_CHECK_GE(word.size(), 1u);
  for (uint32_t ei = 0; ei < g.graph.num_edges(); ++ei) {
    const LabeledEdge& e = g.graph.edge(ei);
    uint32_t cur = e.src;
    for (size_t i = 0; i < word.size(); ++i) {
      uint32_t next = (i + 1 == word.size()) ? e.dst : inst.labeled.AddVertices(1);
      inst.labeled.AddEdge(cur, next, word[i]);
      inst.edge_subs.push_back(i == 0 ? InputSubstitution::Var(ei)
                                      : InputSubstitution::One());
      cur = next;
    }
  }
}

}  // namespace

LabeledReductionInstance BuildTcToRpqInstance(const StGraph& g,
                                              const DfaPumping& pump,
                                              uint32_t num_labels) {
  DLCIRC_CHECK_GE(pump.y.size(), 1u);
  LabeledReductionInstance inst;
  inst.labeled = LabeledGraph(g.graph.num_vertices(), num_labels);
  inst.num_tc_vars = static_cast<uint32_t>(g.graph.num_edges());
  // Each edge reads y; the first gadget edge carries the TC variable.
  ExpandEdges(inst, g, pump.y);
  // Prefix x into s; suffix z out of t.
  inst.s_bar = PrependConstantPath(inst, g.s, pump.x);
  inst.t_bar = AppendConstantPath(inst, g.t, pump.z);
  return inst;
}

Result<LabeledReductionInstance> BuildTcToCfgInstance(const StGraph& g,
                                                      uint32_t path_len,
                                                      const CfgPumping& pump,
                                                      uint32_t num_labels) {
  if (pump.v.empty()) {
    return Result<LabeledReductionInstance>::Error(
        "pumping has empty v; the paper's WLOG |v| >= 1 does not apply — use "
        "the regular (Theorem 5.9) reduction instead");
  }
  LabeledReductionInstance inst;
  inst.labeled = LabeledGraph(g.graph.num_vertices(), num_labels);
  inst.num_tc_vars = static_cast<uint32_t>(g.graph.num_edges());
  // Every edge reads v. An s-t path contributes v^{path_len}.
  ExpandEdges(inst, g, pump.v);
  // Prefix p := u v into s: total v-count becomes path_len + 1.
  std::vector<uint32_t> prefix = pump.u;
  prefix.insert(prefix.end(), pump.v.begin(), pump.v.end());
  inst.s_bar = PrependConstantPath(inst, g.s, prefix);
  // Suffix q := w x^{path_len+1} y out of t.
  std::vector<uint32_t> suffix = pump.w;
  for (uint32_t i = 0; i <= path_len; ++i) {
    suffix.insert(suffix.end(), pump.x.begin(), pump.x.end());
  }
  suffix.insert(suffix.end(), pump.y.begin(), pump.y.end());
  inst.t_bar = AppendConstantPath(inst, g.t, suffix);
  return inst;
}

Circuit RpqViaProductCircuit(const LabeledGraph& graph,
                             const std::vector<uint32_t>& edge_vars,
                             uint32_t num_vars, const Dfa& dfa, uint32_t s,
                             uint32_t t) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  DLCIRC_CHECK_NE(s, t);
  GraphDfaProduct prod = BuildGraphDfaProduct(graph, dfa);
  // Product edges inherit the ORIGINAL edge's variable: this is what makes
  // the reduction share inputs across copies ("connecting the input
  // variables based on their projections").
  std::vector<uint32_t> prod_vars;
  prod_vars.reserve(prod.graph.num_edges());
  for (uint32_t pe = 0; pe < prod.graph.num_edges(); ++pe) {
    prod_vars.push_back(edge_vars[prod.edge_origin[pe]]);
  }
  std::vector<std::pair<uint32_t, uint32_t>> outputs;
  for (uint32_t q = 0; q < dfa.num_states(); ++q) {
    if (dfa.accept(q)) {
      outputs.emplace_back(prod.VertexOf(s, dfa.start()), prod.VertexOf(t, q));
    }
  }
  DLCIRC_CHECK(!outputs.empty()) << "DFA has no accept states";
  Circuit per_accept =
      RepeatedSquaringCircuit(prod.graph, prod_vars, num_vars, outputs);
  CircuitBuilder::Options opts;
  opts.absorptive = true;
  return CombineOutputsWithPlus(per_accept, opts);
}

}  // namespace dlcirc
