#include "src/constructions/uvg_circuit.h"

#include <cmath>
#include <unordered_map>

#include "src/util/check.h"

namespace dlcirc {

namespace {

// Sparse gate-valued matrix over ids [0, n); absent = Zero.
class GateMatrix {
 public:
  explicit GateMatrix(uint32_t n) : n_(n) {}

  GateId Get(uint32_t a, uint32_t b) const {
    auto it = cells_.find(Key(a, b));
    return it == cells_.end() ? 0 /* builder Zero id */ : it->second;
  }
  void Set(uint32_t a, uint32_t b, GateId g) {
    if (g == 0) return;
    cells_[Key(a, b)] = g;
  }
  const std::unordered_map<uint64_t, GateId>& cells() const { return cells_; }

  static uint32_t KeyA(uint64_t key) { return static_cast<uint32_t>(key >> 32); }
  static uint32_t KeyB(uint64_t key) { return static_cast<uint32_t>(key); }

 private:
  uint64_t Key(uint32_t a, uint32_t b) const {
    DLCIRC_CHECK_LT(a, n_);
    DLCIRC_CHECK_LT(b, n_);
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  uint32_t n_;
  std::unordered_map<uint64_t, GateId> cells_;
};

}  // namespace

UvgResult UvgCircuit(const GroundedProgram& g, const UvgOptions& options) {
  const uint32_t num_facts = g.num_idb_facts();
  // Ids: 0 = <0>, fact f = f + 1.
  const uint32_t n = num_facts + 1;
  auto id_of = [](uint32_t fact) { return fact + 1; };

  uint64_t fringe_bound = options.fringe_bound;
  if (fringe_bound == 0) {
    uint64_t max_body = 1;
    for (const GroundRule& r : g.rules()) {
      max_body = std::max<uint64_t>(max_body, r.body_idbs.size() + r.body_edbs.size());
    }
    fringe_bound = static_cast<uint64_t>(num_facts + 1) * (max_body + 1);
  }
  uint32_t stages = options.stages;
  if (stages == 0) {
    stages = static_cast<uint32_t>(
                 std::ceil(std::log(static_cast<double>(fringe_bound) + 2) /
                           std::log(4.0 / 3.0))) +
             1;
  }

  CircuitBuilder b = CircuitBuilder::ForAbsorptive(g.num_edb_vars());
  GateMatrix cur(n);  // G^{(0)} = all zero

  std::vector<GateId> factors;
  for (uint32_t stage = 1; stage <= stages; ++stage) {
    // Step 1: G1(0, a).
    GateMatrix g1(n);
    {
      std::vector<std::vector<GateId>> terms(num_facts);
      for (const GroundRule& rule : g.rules()) {
        factors.clear();
        bool dead = false;
        for (uint32_t bf : rule.body_idbs) {
          GateId v = cur.Get(0, id_of(bf));
          if (v == b.Zero()) {
            dead = true;
            break;
          }
          factors.push_back(v);
        }
        if (dead) continue;
        for (uint32_t ev : rule.body_edbs) factors.push_back(b.Input(ev));
        terms[rule.head].push_back(b.TimesN(factors));
      }
      for (uint32_t f = 0; f < num_facts; ++f) {
        g1.Set(0, id_of(f), b.PlusN(terms[f]));
      }
    }
    // Step 2: G1(d, a) per body occurrence of d, using this stage's G1(0,.).
    {
      std::unordered_map<uint64_t, std::vector<GateId>> pair_terms;
      for (const GroundRule& rule : g.rules()) {
        for (size_t occ = 0; occ < rule.body_idbs.size(); ++occ) {
          factors.clear();
          bool dead = false;
          for (size_t i = 0; i < rule.body_idbs.size(); ++i) {
            if (i == occ) continue;
            GateId v = g1.Get(0, id_of(rule.body_idbs[i]));
            if (v == b.Zero()) {
              dead = true;
              break;
            }
            factors.push_back(v);
          }
          if (dead) continue;
          for (uint32_t ev : rule.body_edbs) factors.push_back(b.Input(ev));
          GateId term = b.TimesN(factors);
          uint64_t key = (static_cast<uint64_t>(id_of(rule.body_idbs[occ])) << 32) |
                         id_of(rule.head);
          pair_terms[key].push_back(term);
        }
      }
      for (auto& [key, terms] : pair_terms) {
        g1.Set(GateMatrix::KeyA(key), GateMatrix::KeyB(key), b.PlusN(terms));
      }
    }
    // Step 3: G2 = G^{(k-1)} (+) G1.
    GateMatrix g2(n);
    for (const auto& [key, gate] : cur.cells()) g2.Set(GateMatrix::KeyA(key), GateMatrix::KeyB(key), gate);
    for (const auto& [key, gate] : g1.cells()) {
      uint32_t a = GateMatrix::KeyA(key), c = GateMatrix::KeyB(key);
      g2.Set(a, c, b.Plus(g2.Get(a, c), gate));
    }
    // Step 4: one step of path doubling on G2.
    // Index rows: out_edges[c] = list of (dest, gate) for c -> dest.
    std::vector<std::vector<std::pair<uint32_t, GateId>>> rows(n);
    for (const auto& [key, gate] : g2.cells()) {
      rows[GateMatrix::KeyA(key)].emplace_back(GateMatrix::KeyB(key), gate);
    }
    std::unordered_map<uint64_t, std::vector<GateId>> acc;
    for (const auto& [key, gate_ac] : g2.cells()) {
      uint32_t a = GateMatrix::KeyA(key), c = GateMatrix::KeyB(key);
      for (const auto& [dest, gate_cb] : rows[c]) {
        uint64_t k2 = (static_cast<uint64_t>(a) << 32) | dest;
        acc[k2].push_back(b.Times(gate_ac, gate_cb));
      }
    }
    GateMatrix next(n);
    for (const auto& [key, gate] : g2.cells()) next.Set(GateMatrix::KeyA(key), GateMatrix::KeyB(key), gate);
    for (auto& [key, terms2] : acc) {
      uint32_t a = GateMatrix::KeyA(key), dest = GateMatrix::KeyB(key);
      GateId sum = b.PlusN(terms2);
      next.Set(a, dest, b.Plus(next.Get(a, dest), sum));
    }
    cur = std::move(next);
  }

  std::vector<GateId> outputs(num_facts, b.Zero());
  for (uint32_t f = 0; f < num_facts; ++f) outputs[f] = cur.Get(0, id_of(f));
  UvgResult result{b.Build(std::move(outputs)), stages};
  return result;
}

}  // namespace dlcirc
