// Theorem 5.8: for an RPQ whose regular language L is FINITE, a circuit of
// size O(m) and depth O(log n) computing the provenance polynomial of
// T(s, t) over any semiring.
//
// The paper proves this via a magic-set rewriting to unary IDBs; the
// equivalent executable construction unrolls the graph x DFA product for
// K = (longest accepted word) steps from (s, q0):
//   val_i(q, v) = sum over label-l edges (u,v) and moves q' -l-> q of
//                 val_{i-1}(q', u) (x) x_edge,
// and the output is the sum over i <= K and accepting q of val_i(q, t).
// K and |Q| are constants of the (fixed) query, so the size is O(m) and the
// depth O(K log m) = O(log m) in data complexity.
#ifndef DLCIRC_CONSTRUCTIONS_FINITE_RPQ_CIRCUIT_H_
#define DLCIRC_CONSTRUCTIONS_FINITE_RPQ_CIRCUIT_H_

#include <cstdint>

#include "src/circuit/builder.h"
#include "src/circuit/circuit.h"
#include "src/graph/labeled_graph.h"
#include "src/lang/dfa.h"
#include "src/util/result.h"

namespace dlcirc {

/// Builds the Theorem 5.8 circuit. Fails when L(dfa) is infinite. Inputs
/// are edge-index variables (edge i -> variable edge_vars[i]); the circuit
/// is valid over ANY semiring (finite unrolling, finitely many matched
/// paths) and is built without absorptive rewrites by default.
Result<Circuit> FiniteRpqCircuit(const LabeledGraph& graph,
                                 const std::vector<uint32_t>& edge_vars,
                                 uint32_t num_vars, const Dfa& dfa, uint32_t s,
                                 uint32_t t);

/// The core of the Theorem 5.8 unrolling, exposed for multi-output
/// constructions (the pipeline's dichotomy planner builds one circuit
/// covering every IDB fact): unrolls the graph x DFA product from source
/// vertex `s` into `b`, and returns for every vertex t the list of terms
/// whose (+)-sum computes
///   sum over accepted words w and w-labeled paths s -> t
///     of the product of the path's edge variables
/// (each matched path contributes exactly once — the DFA run is unique).
/// Callers PlusN only the vertices they report, so unqueried vertices cost
/// no gates. `in_edges` is graph.InEdgeIndex(), hoisted so one index serves
/// many source unrollings. Requires L(dfa) finite (CHECK) and
/// dfa.num_labels() >= graph labels.
std::vector<std::vector<GateId>> FiniteRpqReachTerms(
    CircuitBuilder& b, const LabeledGraph& graph,
    const std::vector<std::vector<uint32_t>>& in_edges,
    const std::vector<uint32_t>& edge_vars, const Dfa& dfa, uint32_t s);

}  // namespace dlcirc

#endif  // DLCIRC_CONSTRUCTIONS_FINITE_RPQ_CIRCUIT_H_
