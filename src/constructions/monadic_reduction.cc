#include "src/constructions/monadic_reduction.h"

#include <algorithm>
#include <functional>

#include "src/datalog/analysis.h"
#include "src/datalog/engine.h"
#include "src/datalog/grounding.h"
#include "src/semiring/instances.h"
#include "src/util/check.h"

namespace dlcirc {

namespace {

constexpr uint32_t kNone = 0xffffffffu;

// Per-rule shape info for monadic linear programs.
struct RuleShape {
  bool is_recursive = false;
  uint32_t head_var = 0;
  uint32_t idb_pred = kNone;  // body IDB predicate (recursive rules)
  uint32_t idb_var = kNone;   // its variable
};

struct ProgramShape {
  std::vector<RuleShape> rules;
  std::vector<bool> idb_mask;
};

Result<ProgramShape> AnalyzeShape(const Program& program) {
  ProgramAnalysis a = Analyze(program);
  if (!a.is_monadic || !a.is_linear || !a.is_connected) {
    return Result<ProgramShape>::Error(
        "program must be monadic, linear and connected");
  }
  ProgramShape shape;
  shape.idb_mask = a.idb_mask;
  for (const Rule& r : program.rules) {
    RuleShape rs;
    if (r.head.args.size() != 1 || !r.head.args[0].IsVar()) {
      return Result<ProgramShape>::Error("head must be a single variable");
    }
    rs.head_var = r.head.args[0].id;
    for (const Atom& atom : r.body) {
      if (!a.idb_mask[atom.pred]) continue;
      rs.is_recursive = true;
      rs.idb_pred = atom.pred;
      if (!atom.args[0].IsVar()) {
        return Result<ProgramShape>::Error("IDB body argument must be a variable");
      }
      rs.idb_var = atom.args[0].id;
    }
    if (rs.is_recursive && rs.idb_var == rs.head_var) {
      return Result<ProgramShape>::Error(
          "recursive rule with head variable == body IDB variable is outside "
          "the implemented scope (paper Theorem 6.8 general case)");
    }
    shape.rules.push_back(rs);
  }
  return shape;
}

// The word CQ plus its chain variables (chain[i] = head var of rule i's
// instance; chain[k] for a complete k-rule recursive prefix is the open
// IDB variable).
struct WordCqResult {
  Cq cq;
  std::vector<uint32_t> chain;
};

Result<WordCqResult> BuildWordCq(const Program& program, const ProgramShape& shape,
                                 const RuleWord& word, bool require_complete) {
  WordCqResult out;
  out.cq.num_vars = 0;
  uint32_t expect_pred = program.target_pred;
  out.chain.push_back(out.cq.num_vars++);  // chain[0] = free variable
  for (size_t i = 0; i < word.size(); ++i) {
    if (word[i] >= program.rules.size()) {
      return Result<WordCqResult>::Error("rule index out of range");
    }
    const Rule& rule = program.rules[word[i]];
    const RuleShape& rs = shape.rules[word[i]];
    if (rule.head.pred != expect_pred) {
      return Result<WordCqResult>::Error("rule word breaks the head/body chain");
    }
    if (!rs.is_recursive && i + 1 != word.size()) {
      return Result<WordCqResult>::Error("initialization rule before the end");
    }
    // Substitution for this rule instance.
    std::vector<uint32_t> sub(program.vars.size(), kNone);
    sub[rs.head_var] = out.chain[i];
    if (rs.is_recursive) {
      sub[rs.idb_var] = out.cq.num_vars++;
      out.chain.push_back(sub[rs.idb_var]);
      expect_pred = rs.idb_pred;
    }
    auto resolve = [&](const Term& t) -> Term {
      if (!t.IsVar()) return t;
      if (sub[t.id] == kNone) sub[t.id] = out.cq.num_vars++;
      return Term::Var(sub[t.id]);
    };
    for (const Atom& atom : rule.body) {
      if (shape.idb_mask[atom.pred]) continue;  // the IDB goal, not an atom
      Atom inst{atom.pred, {}};
      for (const Term& t : atom.args) inst.args.push_back(resolve(t));
      out.cq.atoms.push_back(std::move(inst));
    }
  }
  if (require_complete) {
    if (word.empty() || shape.rules[word.back()].is_recursive) {
      return Result<WordCqResult>::Error("word must end with an initialization rule");
    }
  }
  out.cq.free_vars = {out.chain[0]};
  return out;
}

}  // namespace

Result<Cq> MonadicWordCq(const Program& program, const RuleWord& word,
                         bool require_complete) {
  Result<ProgramShape> shape = AnalyzeShape(program);
  if (!shape.ok()) return Result<Cq>::Error(shape.error());
  Result<WordCqResult> r = BuildWordCq(program, shape.value(), word, require_complete);
  if (!r.ok()) return Result<Cq>::Error(r.error());
  return std::move(r).value().cq;
}

Result<bool> MonadicWordAccepted(const Program& program, const RuleWord& word) {
  Result<ProgramShape> shape = AnalyzeShape(program);
  if (!shape.ok()) return Result<bool>::Error(shape.error());
  Result<WordCqResult> r =
      BuildWordCq(program, shape.value(), word, /*require_complete=*/false);
  if (!r.ok()) return Result<bool>::Error(r.error());
  CanonicalDb canon = BuildCanonicalDb(program, r.value().cq);
  GroundedProgram g = Ground(program, canon.db);
  uint32_t fact = g.FindIdbFact(program.target_pred,
                                {canon.var_const[r.value().cq.free_vars[0]]});
  return fact != GroundedProgram::kNotFound;
}

Result<MonadicPumping> FindMonadicPumping(const Program& program, uint32_t max_len,
                                          uint32_t max_pump) {
  Result<ProgramShape> shape_r = AnalyzeShape(program);
  if (!shape_r.ok()) return Result<MonadicPumping>::Error(shape_r.error());
  const ProgramShape& shape = shape_r.value();

  // Enumerate recursive words from a given head pred, up to max_len.
  auto words_from = [&](uint32_t start_pred, uint32_t len_limit) {
    std::vector<RuleWord> out;
    std::function<void(uint32_t, RuleWord&)> go = [&](uint32_t pred, RuleWord& acc) {
      if (!acc.empty()) out.push_back(acc);
      if (acc.size() >= len_limit) return;
      for (uint32_t ri = 0; ri < program.rules.size(); ++ri) {
        if (!shape.rules[ri].is_recursive) continue;
        if (program.rules[ri].head.pred != pred) continue;
        acc.push_back(ri);
        go(shape.rules[ri].idb_pred, acc);
        acc.pop_back();
      }
    };
    RuleWord acc;
    go(start_pred, acc);
    return out;
  };
  auto chain_end = [&](uint32_t start_pred, const RuleWord& w) {
    uint32_t p = start_pred;
    for (uint32_t ri : w) p = shape.rules[ri].idb_pred;
    return p;
  };

  std::vector<RuleWord> xs = words_from(program.target_pred, max_len);
  for (const RuleWord& x : xs) {
    uint32_t p = chain_end(program.target_pred, x);
    for (const RuleWord& y : words_from(p, max_len)) {
      if (chain_end(p, y) != p) continue;  // y must loop on p
      // zu: recursive tail (possibly empty) + init rule.
      std::vector<RuleWord> tails = words_from(p, max_len);
      tails.push_back({});  // empty recursive tail
      for (const RuleWord& tail : tails) {
        uint32_t q = chain_end(p, tail);
        for (uint32_t bi = 0; bi < program.rules.size(); ++bi) {
          if (shape.rules[bi].is_recursive) continue;
          if (program.rules[bi].head.pred != q) continue;
          RuleWord zu = tail;
          zu.push_back(bi);
          // Candidate (x, y, zu): verify the two pumping conditions.
          bool ok = true;
          for (uint32_t i = 0; i <= max_pump && ok; ++i) {
            RuleWord w = x;
            for (uint32_t k = 0; k < i; ++k) w.insert(w.end(), y.begin(), y.end());
            w.insert(w.end(), zu.begin(), zu.end());
            Result<bool> acc = MonadicWordAccepted(program, w);
            if (!acc.ok() || !acc.value()) {
              ok = false;
              break;
            }
            for (size_t plen = 1; plen < w.size() && ok; ++plen) {
              RuleWord prefix(w.begin(), w.begin() + plen);
              Result<bool> pacc = MonadicWordAccepted(program, prefix);
              if (!pacc.ok() || pacc.value()) ok = false;
            }
          }
          if (ok) return MonadicPumping{x, y, zu};
        }
      }
    }
  }
  return Result<MonadicPumping>::Error(
      "no pumping triple found within the search horizon (the program may be "
      "bounded)");
}

Result<MonadicReductionInstance> BuildTcToMonadicInstance(
    const Program& program, const MonadicPumping& pump, const StGraph& layered) {
  Result<ProgramShape> shape_r = AnalyzeShape(program);
  if (!shape_r.ok()) return Result<MonadicReductionInstance>::Error(shape_r.error());
  const ProgramShape& shape = shape_r.value();

  Result<WordCqResult> cx = BuildWordCq(program, shape, pump.x, false);
  if (!cx.ok()) return Result<MonadicReductionInstance>::Error(cx.error());
  // C_y / C_zu start at the loop predicate, not the target: build their CQs
  // by re-rooting — BuildWordCq insists the chain starts at the target, so
  // concatenate x first and strip is complex; instead instantiate segments
  // directly here via the same substitution logic on raw rules.
  auto build_segment = [&](const RuleWord& word) -> WordCqResult {
    WordCqResult out;
    out.cq.num_vars = 0;
    out.chain.push_back(out.cq.num_vars++);
    for (size_t i = 0; i < word.size(); ++i) {
      const Rule& rule = program.rules[word[i]];
      const RuleShape& rs = shape.rules[word[i]];
      std::vector<uint32_t> sub(program.vars.size(), kNone);
      sub[rs.head_var] = out.chain[i];
      if (rs.is_recursive) {
        sub[rs.idb_var] = out.cq.num_vars++;
        out.chain.push_back(sub[rs.idb_var]);
      }
      auto resolve = [&](const Term& t) -> Term {
        if (!t.IsVar()) return t;
        if (sub[t.id] == kNone) sub[t.id] = out.cq.num_vars++;
        return Term::Var(sub[t.id]);
      };
      for (const Atom& atom : rule.body) {
        if (shape.idb_mask[atom.pred]) continue;
        Atom inst{atom.pred, {}};
        for (const Term& t : atom.args) inst.args.push_back(resolve(t));
        out.cq.atoms.push_back(std::move(inst));
      }
    }
    out.cq.free_vars = {out.chain[0]};
    return out;
  };
  WordCqResult seg_x = build_segment(pump.x);
  WordCqResult seg_y = build_segment(pump.y);
  WordCqResult seg_zu = build_segment(pump.zu);

  MonadicReductionInstance inst{Database(program), 0, {},
                                static_cast<uint32_t>(layered.graph.num_edges())};
  std::vector<uint32_t> vertex_const(layered.graph.num_vertices());
  for (uint32_t v = 0; v < layered.graph.num_vertices(); ++v) {
    vertex_const[v] = inst.db.InternConst("v" + std::to_string(v));
  }
  inst.source_const = vertex_const[layered.s];

  std::vector<uint32_t> designated;  // per edge: designated fact var or kNone
  for (uint32_t ei = 0; ei < layered.graph.num_edges(); ++ei) {
    const LabeledEdge& e = layered.graph.edge(ei);
    const WordCqResult* seg;
    if (e.src == layered.s) {
      seg = &seg_x;
    } else if (e.dst == layered.t) {
      seg = &seg_zu;
    } else {
      seg = &seg_y;
    }
    // Variable -> constant map: chain front -> src, chain back -> dst (when
    // the segment has an open end), fresh gadget constants otherwise.
    std::vector<uint32_t> vmap(seg->cq.num_vars, kNone);
    vmap[seg->chain.front()] = vertex_const[e.src];
    bool has_open_end = seg == &seg_x || seg == &seg_y;
    if (has_open_end) vmap[seg->chain.back()] = vertex_const[e.dst];
    auto const_of = [&](uint32_t v) {
      if (vmap[v] == kNone) {
        vmap[v] = inst.db.InternConst("g" + std::to_string(ei) + "_" +
                                      std::to_string(v));
      }
      return vmap[v];
    };
    uint32_t chosen = kNone;
    for (const Atom& atom : seg->cq.atoms) {
      Tuple t;
      for (const Term& term : atom.args) {
        DLCIRC_CHECK(term.IsVar()) << "constants in rules unsupported here";
        t.push_back(const_of(term.id));
      }
      uint32_t before = inst.db.num_facts();
      uint32_t var = inst.db.AddFact(atom.pred, t);
      bool is_new = inst.db.num_facts() > before;
      if (chosen == kNone && is_new) chosen = var;
    }
    if (chosen == kNone) {
      return Result<MonadicReductionInstance>::Error(
          "edge gadget produced no private fact; cannot designate a variable "
          "carrier for edge " + std::to_string(ei));
    }
    designated.push_back(chosen);
  }
  inst.fact_subs.assign(inst.db.num_facts(), InputSubstitution::One());
  for (uint32_t ei = 0; ei < designated.size(); ++ei) {
    inst.fact_subs[designated[ei]] = InputSubstitution::Var(ei);
  }
  return inst;
}

}  // namespace dlcirc
