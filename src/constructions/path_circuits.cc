#include "src/constructions/path_circuits.h"

#include <algorithm>

#include "src/util/check.h"

namespace dlcirc {

namespace {

// Kahn topological order; empty when the graph is cyclic.
std::vector<uint32_t> TopologicalOrder(const LabeledGraph& g) {
  std::vector<uint32_t> indeg(g.num_vertices(), 0);
  for (const LabeledEdge& e : g.edges()) ++indeg[e.dst];
  auto out = g.OutEdgeIndex();
  std::vector<uint32_t> order;
  order.reserve(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (indeg[v] == 0) order.push_back(v);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (uint32_t ei : out[order[i]]) {
      if (--indeg[g.edge(ei).dst] == 0) order.push_back(g.edge(ei).dst);
    }
  }
  if (order.size() != g.num_vertices()) order.clear();
  return order;
}

}  // namespace

Circuit LayeredGraphCircuit(const LabeledGraph& graph,
                            const std::vector<uint32_t>& edge_vars,
                            uint32_t num_vars, uint32_t s, uint32_t t,
                            CircuitBuilder::Options options) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  std::vector<uint32_t> order = TopologicalOrder(graph);
  DLCIRC_CHECK(!order.empty()) << "LayeredGraphCircuit requires an acyclic graph";
  CircuitBuilder b(num_vars, options);
  auto in = graph.InEdgeIndex();
  std::vector<GateId> gate(graph.num_vertices(), b.Zero());
  gate[s] = b.One();
  std::vector<GateId> terms;
  for (uint32_t v : order) {
    if (v == s) continue;
    terms.clear();
    for (uint32_t ei : in[v]) {
      const LabeledEdge& e = graph.edge(ei);
      if (gate[e.src] == b.Zero()) continue;
      terms.push_back(b.Times(gate[e.src], b.Input(edge_vars[ei])));
    }
    gate[v] = b.PlusN(terms);
  }
  return b.Build({gate[t]});
}

Circuit LayeredGraphCircuitIdentity(const StGraph& g) {
  std::vector<uint32_t> vars(g.graph.num_edges());
  for (uint32_t i = 0; i < vars.size(); ++i) vars[i] = i;
  CircuitBuilder::Options opts;  // valid over any semiring on DAGs
  return LayeredGraphCircuit(g.graph, vars, static_cast<uint32_t>(vars.size()), g.s,
                             g.t, opts);
}

Circuit BellmanFordCircuit(const LabeledGraph& graph,
                           const std::vector<uint32_t>& edge_vars,
                           uint32_t num_vars, uint32_t s, uint32_t t,
                           uint32_t layers) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  DLCIRC_CHECK_NE(s, t) << "T(s,s) provenance is not defined by the TC program";
  uint32_t n = graph.num_vertices();
  if (layers == 0) layers = n >= 1 ? n - 1 : 0;
  CircuitBuilder b = CircuitBuilder::ForAbsorptive(num_vars);
  auto in = graph.InEdgeIndex();
  // f^1_j = x_{s,j}.
  std::vector<GateId> cur(n, b.Zero());
  std::vector<GateId> terms;
  for (uint32_t v = 0; v < n; ++v) {
    terms.clear();
    for (uint32_t ei : in[v]) {
      if (graph.edge(ei).src == s) terms.push_back(b.Input(edge_vars[ei]));
    }
    cur[v] = b.PlusN(terms);
  }
  // f^k_j = f^{k-1}_j (+) sum_{(i,j) in E} f^{k-1}_i (x) x_{i,j}.
  for (uint32_t k = 2; k <= layers; ++k) {
    std::vector<GateId> next(n, b.Zero());
    for (uint32_t v = 0; v < n; ++v) {
      terms.clear();
      terms.push_back(cur[v]);
      for (uint32_t ei : in[v]) {
        const LabeledEdge& e = graph.edge(ei);
        if (cur[e.src] == b.Zero()) continue;
        terms.push_back(b.Times(cur[e.src], b.Input(edge_vars[ei])));
      }
      next[v] = b.PlusN(terms);
    }
    if (next == cur) break;  // structural fixpoint: shorter on shallow graphs
    cur = std::move(next);
  }
  return b.Build({cur[t]});
}

Circuit BellmanFordCircuitMulti(
    const LabeledGraph& graph, const std::vector<uint32_t>& edge_vars,
    uint32_t num_vars,
    const std::vector<std::pair<uint32_t, uint32_t>>& outputs,
    uint32_t layers) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  const uint32_t n = graph.num_vertices();
  if (layers == 0) layers = n;
  CircuitBuilder b = CircuitBuilder::ForAbsorptive(num_vars);
  auto in = graph.InEdgeIndex();

  // Outputs grouped by source: one relaxation sweep covers every target.
  std::vector<std::vector<uint32_t>> by_source(n);
  for (uint32_t i = 0; i < outputs.size(); ++i) {
    DLCIRC_CHECK_LT(outputs[i].first, n);
    DLCIRC_CHECK_LT(outputs[i].second, n);
    by_source[outputs[i].first].push_back(i);
  }

  std::vector<GateId> outs(outputs.size(), b.Zero());
  std::vector<GateId> terms;
  for (uint32_t s = 0; s < n; ++s) {
    if (by_source[s].empty()) continue;
    // f^1_j = x_{s,j}.
    std::vector<GateId> cur(n, b.Zero());
    for (uint32_t v = 0; v < n; ++v) {
      terms.clear();
      for (uint32_t ei : in[v]) {
        if (graph.edge(ei).src == s) terms.push_back(b.Input(edge_vars[ei]));
      }
      cur[v] = b.PlusN(terms);
    }
    // f^k_j = f^{k-1}_j (+) sum_{(i,j) in E} f^{k-1}_i (x) x_{i,j}.
    for (uint32_t k = 2; k <= layers; ++k) {
      std::vector<GateId> next(n, b.Zero());
      for (uint32_t v = 0; v < n; ++v) {
        terms.clear();
        terms.push_back(cur[v]);
        for (uint32_t ei : in[v]) {
          const LabeledEdge& e = graph.edge(ei);
          if (cur[e.src] == b.Zero()) continue;
          terms.push_back(b.Times(cur[e.src], b.Input(edge_vars[ei])));
        }
        next[v] = b.PlusN(terms);
      }
      if (next == cur) break;  // structural fixpoint
      cur = std::move(next);
    }
    for (uint32_t i : by_source[s]) outs[i] = cur[outputs[i].second];
  }
  return b.Build(std::move(outs));
}

Circuit BellmanFordCircuitIdentity(const StGraph& g, uint32_t layers) {
  std::vector<uint32_t> vars(g.graph.num_edges());
  for (uint32_t i = 0; i < vars.size(); ++i) vars[i] = i;
  return BellmanFordCircuit(g.graph, vars, static_cast<uint32_t>(vars.size()), g.s,
                            g.t, layers);
}

Circuit RepeatedSquaringCircuit(
    const LabeledGraph& graph, const std::vector<uint32_t>& edge_vars,
    uint32_t num_vars, const std::vector<std::pair<uint32_t, uint32_t>>& outputs) {
  DLCIRC_CHECK_EQ(edge_vars.size(), graph.num_edges());
  uint32_t n = graph.num_vertices();
  CircuitBuilder b = CircuitBuilder::ForAbsorptive(num_vars);
  // Sparse row representation: row[i] = sorted list of (j, gate).
  using Row = std::vector<std::pair<uint32_t, GateId>>;
  std::vector<Row> m(n);
  {
    // M[i][i] = 1; M[i][j] = sum of parallel edge vars.
    std::vector<std::vector<GateId>> acc(n);
    std::vector<std::vector<uint32_t>> cols(n);
    for (uint32_t ei = 0; ei < graph.num_edges(); ++ei) {
      const LabeledEdge& e = graph.edge(ei);
      if (e.src == e.dst) continue;  // self loops are absorbed by M[i][i]=1
      cols[e.src].push_back(e.dst);
      acc[e.src].push_back(b.Input(edge_vars[ei]));
    }
    for (uint32_t i = 0; i < n; ++i) {
      // Merge parallel edges with Plus.
      std::vector<std::pair<uint32_t, GateId>> entries;
      for (size_t k = 0; k < cols[i].size(); ++k) entries.emplace_back(cols[i][k], acc[i][k]);
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& c) { return a.first < c.first; });
      Row row;
      for (auto& [j, gate] : entries) {
        if (!row.empty() && row.back().first == j) {
          row.back().second = b.Plus(row.back().second, gate);
        } else {
          row.emplace_back(j, gate);
        }
      }
      // Diagonal 1.
      Row with_diag;
      bool inserted = false;
      for (auto& [j, gate] : row) {
        if (!inserted && j >= i) {
          if (j == i) {
            // Edge (i,i) can't happen (skipped); still guard.
            with_diag.emplace_back(i, b.One());
            inserted = true;
            continue;
          }
          with_diag.emplace_back(i, b.One());
          inserted = true;
        }
        with_diag.emplace_back(j, gate);
      }
      if (!inserted) with_diag.emplace_back(i, b.One());
      m[i] = std::move(with_diag);
    }
  }
  // ceil(log2 n) squarings cover all walk lengths up to >= n.
  uint32_t rounds = 0;
  for (uint32_t len = 1; len < n; len *= 2) ++rounds;
  for (uint32_t r = 0; r < rounds; ++r) {
    std::vector<Row> next(n);
    // next[i][j] = sum_k m[i][k] * m[k][j]  (sparse accumulate).
    std::vector<std::vector<GateId>> terms(n);  // per column j for fixed i
    std::vector<uint32_t> touched;
    for (uint32_t i = 0; i < n; ++i) {
      touched.clear();
      for (const auto& [k, mik] : m[i]) {
        for (const auto& [j, mkj] : m[k]) {
          GateId prod = b.Times(mik, mkj);
          if (terms[j].empty()) touched.push_back(j);
          terms[j].push_back(prod);
        }
      }
      std::sort(touched.begin(), touched.end());
      Row row;
      row.reserve(touched.size());
      for (uint32_t j : touched) {
        row.emplace_back(j, b.PlusN(terms[j]));
        terms[j].clear();
      }
      next[i] = std::move(row);
    }
    m = std::move(next);
  }
  std::vector<GateId> outs;
  outs.reserve(outputs.size());
  for (auto [s, t] : outputs) {
    DLCIRC_CHECK_NE(s, t) << "T(s,s) provenance is not defined by the TC program";
    GateId gate = b.Zero();
    for (const auto& [j, gj] : m[s]) {
      if (j == t) gate = gj;
    }
    outs.push_back(gate);
  }
  return b.Build(std::move(outs));
}

Circuit RepeatedSquaringCircuitIdentity(const StGraph& g) {
  std::vector<uint32_t> vars(g.graph.num_edges());
  for (uint32_t i = 0; i < vars.size(); ++i) vars[i] = i;
  return RepeatedSquaringCircuit(g.graph, vars, static_cast<uint32_t>(vars.size()),
                                 {{g.s, g.t}});
}

}  // namespace dlcirc
