// Text input formats for the pipeline front door: edge-list graphs and
// batched tagging files. Both use `%` comments to end of line and blank-line
// skipping, like the Datalog parser.
//
// Graph CSV (one edge per line):
//
//   src,dst          % label defaults to the program's only binary EDB pred
//   src,dst,label    % label names a binary EDB predicate
//
// Vertex names are arbitrary constant tokens and are preserved in query
// output; labels must name binary EDB predicates of the target program.
//
// Tagging CSV (one batch lane per line): `num_vars` comma-separated semiring
// values in EDB provenance-variable order (the order `dlcirc run
// --show-facts` prints), in the textual convention of ParseSemiringValue.
#ifndef DLCIRC_PIPELINE_IO_H_
#define DLCIRC_PIPELINE_IO_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/datalog/ast.h"
#include "src/graph/labeled_graph.h"
#include "src/pipeline/semiring_registry.h"
#include "src/util/result.h"

namespace dlcirc {
namespace pipeline {

/// A parsed edge-list graph plus the naming needed to load it into a
/// Database without losing the caller's vertex constants.
struct GraphCsv {
  LabeledGraph graph{0};
  std::vector<std::string> vertex_names;  ///< vertex id -> constant name
  std::vector<std::string> label_preds;   ///< label id -> EDB predicate name
};

/// Parses graph CSV text against `program` (see file comment). Fails on
/// malformed rows, labels that are not binary EDB predicates, and unlabeled
/// rows when the program has more than one binary EDB predicate.
Result<GraphCsv> ParseGraphCsv(std::string_view text, const Program& program);

namespace internal {

/// Comma-splits one line, trimming surrounding whitespace per field.
std::vector<std::string> SplitCsvLine(std::string_view line);

/// Strips `%` comments and splits into (line_number, content) pairs,
/// dropping blank lines.
std::vector<std::pair<int, std::string>> SignificantLines(std::string_view text);

}  // namespace internal

/// Parses a tagging CSV: one lane per line, `num_vars` values per lane.
template <Semiring S>
Result<std::vector<std::vector<typename S::Value>>> ParseTagCsv(
    std::string_view text, uint32_t num_vars) {
  using Lanes = std::vector<std::vector<typename S::Value>>;
  Lanes lanes;
  for (const auto& [number, line] : internal::SignificantLines(text)) {
    std::vector<std::string> fields = internal::SplitCsvLine(line);
    if (fields.size() != num_vars) {
      return Result<Lanes>::Error(
          "tagging line " + std::to_string(number) + ": expected " +
          std::to_string(num_vars) + " values (one per EDB fact), got " +
          std::to_string(fields.size()));
    }
    std::vector<typename S::Value> lane;
    lane.reserve(num_vars);
    for (const std::string& field : fields) {
      Result<typename S::Value> v = ParseSemiringValue<S>(field);
      if (!v.ok()) {
        return Result<Lanes>::Error("tagging line " + std::to_string(number) +
                                    ": " + v.error());
      }
      lane.push_back(std::move(v).value());
    }
    lanes.push_back(std::move(lane));
  }
  if (lanes.empty()) return Result<Lanes>::Error("tagging file has no lanes");
  return lanes;
}

}  // namespace pipeline
}  // namespace dlcirc

#endif  // DLCIRC_PIPELINE_IO_H_
