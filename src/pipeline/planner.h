// The cost-based planner: one routing surface for every construction the
// paper proves (ROADMAP item 3).
//
// PR 5's chain planner wired the Section 5 dichotomy; this module folds the
// remaining plan-time decisions into a single scored choice per (program,
// EDB, semiring):
//
//   kGrounded          Theorem 3.1  — always applicable, layers = ICO steps.
//   kBounded           Theorem 4.3  — a bounded program needs only a
//                      constant number of ICO layers, so the grounded
//                      construction capped at the bound has depth O(log n).
//                      The bound comes from src/boundedness: exact for basic
//                      chain programs (Prop 5.5), else the Theorem 4.5/4.6
//                      Chom semi-decision. Soundness of the truncation:
//                      chain-exact bounds need a plus-idempotent semiring
//                      (extra derivations beyond the cap repeat a unit cycle
//                      and contribute identical monomials); Chom bounds need
//                      an absorptive x-idempotent semiring (Corollary 4.7 —
//                      deeper expansions are homomorphically contained, so
//                      their monomials are absorbed).
//   kFiniteRpq         Theorem 5.8  — finite chain languages; size O(m),
//                      depth O(log n); plus-idempotent semirings.
//   kBellmanFord       Theorem 5.6  — TC-shaped chain programs (every
//                      non-empty language is Sigma+) on sparse graphs: size
//                      O(mn); absorptive semirings.
//   kRepeatedSquaring  Theorem 5.7  — same programs on dense graphs: size
//                      O(n^3 log n), depth O(log^2 n). The E2 bench
//                      measures the crossover the cost model encodes.
//   kUvg               Theorem 6.2  — linear recursive programs (polynomial
//                      fringe, Corollary 6.3): depth O(log^2 m); absorptive
//                      semirings.
//
// PlanRoute scores every candidate (score = est_size + depth_weight *
// est_depth over coarse closed-form estimates; inapplicable candidates keep
// a reason instead of a score) and returns an explainable RouteDecision —
// the plan tree `dlcirc run|serve --explain` renders. Session::PlanConstruction
// is the front door; the chosen Construction goes into the ordinary PlanKey,
// so the plan cache, PlanStore, snapshots, and serve channels apply
// unchanged.
#ifndef DLCIRC_PIPELINE_PLANNER_H_
#define DLCIRC_PIPELINE_PLANNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/boundedness/boundedness.h"
#include "src/datalog/analysis.h"
#include "src/datalog/ast.h"
#include "src/datalog/database.h"
#include "src/datalog/grounding.h"
#include "src/graph/labeled_graph.h"
#include "src/pipeline/chain_planner.h"
#include "src/semiring/semiring.h"
#include "src/util/result.h"

namespace dlcirc {
namespace pipeline {

/// Circuit constructions the Session can pick from src/constructions (see
/// file comment for the theorem and applicability of each).
enum class Construction : uint8_t {
  kGrounded,
  kUvg,
  kFiniteRpq,
  kBounded,
  kBellmanFord,
  kRepeatedSquaring,
};
inline constexpr uint32_t kNumConstructions = 6;

std::string_view ConstructionName(Construction c);
Result<Construction> ParseConstruction(std::string_view name);

/// The semiring-class flags the planner routes on — a runtime mirror of the
/// compile-time Semiring constants, so one RouteDecision can be computed
/// per request semiring without instantiating templates.
struct SemiringTraits {
  std::string name;
  bool plus_idempotent = false;
  bool absorptive = false;
  bool times_idempotent = false;

  template <Semiring S>
  static SemiringTraits For() {
    return {S::Name(), S::kIsIdempotent, S::kIsAbsorptive,
            S::kIsTimesIdempotent};
  }
};

/// Everything the planner knows about one (program, EDB) pair, computed
/// once per Session and shared by every per-semiring routing decision.
/// Semiring-independent by construction (Corollary 4.7 makes the Chom
/// boundedness verdict class-wide; the chain language analysis never
/// looked at values).
struct PlannerContext {
  ProgramAnalysis analysis;

  // Section 5 chain shape.
  bool is_chain = false;       ///< basic chain; the CFG correspondence holds
  bool chain_finite = false;   ///< every non-empty language finite (Thm 5.8)
  uint32_t chain_longest_word = 0;
  std::string chain_reason;    ///< route reason, or why the program is not chain
  /// Left-linear chain where every IDB predicate's non-empty language is
  /// exactly Sigma+ (all non-empty label words) — the TC shape Theorems
  /// 5.6/5.7 are stated for, detected structurally on the minimized DFAs.
  bool sigma_plus = false;

  // Section 4 boundedness (combined chain-exact / Chom verdict).
  BoundednessReport bounded;
  /// ICO layer cap Compile(kBounded) uses: bound+1 for Chom bounds; a
  /// unit-cycle-safe (longest_word+1)*(num_preds+1)+1 for chain-exact ones.
  uint32_t bounded_layer_cap = 0;

  // Instance shape for the cost model.
  uint64_t grounded_size = 0;   ///< GroundedProgram::TotalSize()
  uint32_t num_idb_facts = 0;
  bool binary_idb = true;       ///< every grounded IDB fact is binary
  bool has_diagonal_fact = false;  ///< some grounded IDB fact P(v,v)
  uint32_t num_idb_sources = 0;    ///< distinct source vertices of IDB facts
  bool binary_edb = true;       ///< every EDB fact is binary (graph-shaped)
  uint32_t num_vertices = 0;    ///< EDB graph: |domain|
  uint32_t num_edges = 0;       ///< EDB graph: binary facts
  uint32_t max_indegree = 0;
  /// Directed diameter of the EDB graph (longest finite shortest-path
  /// distance, all-source BFS), or 0 when unknown — non-graph EDB, no
  /// edges, or more vertices than the probe budget. Caps the grounded
  /// candidate's ICO-layer depth estimate: on shallow instances the
  /// grounded construction reaches its structural fixpoint in ~diameter
  /// layers, far below the static num_idb_facts+1 worst case (the E17 gap).
  uint32_t edb_diameter_bound = 0;
};

/// Builds the context. `chain_route` is the Session's cached PR 5 analysis
/// (errors — non-chain programs — are folded into the context, not
/// propagated). `limits` bound the Chom expansion enumeration.
PlannerContext BuildPlannerContext(const Program& program, const Database& db,
                                   const GroundedProgram& grounded,
                                   const Result<ChainRoute>& chain_route,
                                   const ExpansionLimits& limits = {});

struct PlannerOptions {
  /// Relative weight of depth against size in the score. Size dominates
  /// (it is what compile time, memory, and batched-sweep work track);
  /// depth breaks ties toward the paper's shallow constructions, which is
  /// what the parallel evaluator's layer sweeps care about.
  double depth_weight = 8.0;
};

/// One scored candidate in the plan tree.
struct PlanCandidate {
  Construction construction = Construction::kGrounded;
  bool applicable = false;
  std::string reason;    ///< applicability story or rejection, theorem refs
  double est_size = 0;   ///< cost-model gate estimate (applicable only)
  double est_depth = 0;  ///< cost-model depth estimate (applicable only)
  double score = 0;      ///< est_size + depth_weight * est_depth
};

/// The planner's output: the winning construction plus the full scored
/// candidate list (the explainable plan tree).
struct RouteDecision {
  Construction construction = Construction::kGrounded;
  std::string reason;  ///< the winner's candidate reason
  double depth_weight = 8.0;  ///< the weight the scores were computed with
  std::vector<PlanCandidate> candidates;  ///< one per Construction value
};

/// Scores every construction for `traits` over `context` and picks the
/// applicable candidate with the lowest score. kGrounded is always
/// applicable, so a decision always exists.
RouteDecision PlanRoute(const PlannerContext& context,
                        const SemiringTraits& traits,
                        const PlannerOptions& options = {});

/// Renderings of the plan tree for `dlcirc --explain`: an indented text
/// dump and a JSON object (keys: semiring, construction, reason,
/// candidates[]). Both list candidates in enum order with scores for the
/// applicable ones.
std::string RenderExplainText(const RouteDecision& decision,
                              const SemiringTraits& traits);
std::string RenderExplainJson(const RouteDecision& decision,
                              const SemiringTraits& traits);

/// The EDB as an unlabeled graph: vertex = domain constant id, one edge per
/// binary fact carrying the fact's provenance variable. The shared front
/// half of the Theorem 5.6/5.7 compile paths (the finite-RPQ path keeps its
/// labeled variant in chain_planner.cc). Errors on a non-binary fact.
struct EdbGraph {
  LabeledGraph graph = LabeledGraph(0);
  std::vector<uint32_t> edge_vars;  ///< edge index -> provenance variable
};
Result<EdbGraph> EdbAsGraph(const Program& program, const Database& db);

}  // namespace pipeline
}  // namespace dlcirc

#endif  // DLCIRC_PIPELINE_PLANNER_H_
