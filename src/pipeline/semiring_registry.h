// Runtime semiring selection for the pipeline front door.
//
// The library's semirings are compile-time types (src/semiring/instances.h);
// the CLI and Session batch entry points receive a semiring *name* at
// runtime. DispatchSemiring bridges the two: it maps a lowercase name to the
// matching instance type and invokes a generic callable with that type, so
// each templated code path is stamped out once per registered semiring.
//
// ParseSemiringValue / FormatSemiringValue are the textual value convention
// used by tagging CSV files and CLI output: `inf` / `-inf` for the additive
// identities of the (min,+)/(max,+) family, `true`/`false`/`0`/`1` for
// Boolean, plain numerals otherwise — the inverse of each S::ToString.
#ifndef DLCIRC_PIPELINE_SEMIRING_REGISTRY_H_
#define DLCIRC_PIPELINE_SEMIRING_REGISTRY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "src/semiring/instances.h"
#include "src/util/result.h"

namespace dlcirc {
namespace pipeline {

/// Lowercase names accepted by DispatchSemiring, in registry order.
inline const std::vector<std::string>& SemiringNames() {
  static const std::vector<std::string> names = {
      "boolean", "tropical",    "tropicalz", "counting", "viterbi",
      "fuzzy",   "lukasiewicz", "capacity",  "arctic"};
  return names;
}

/// Invokes `fn.template operator()<S>()` with the semiring instance named
/// `name` (see SemiringNames). Returns false when the name is unknown, in
/// which case `fn` is not invoked.
template <typename Fn>
bool DispatchSemiring(std::string_view name, Fn&& fn) {
  if (name == "boolean") {
    fn.template operator()<BooleanSemiring>();
  } else if (name == "tropical") {
    fn.template operator()<TropicalSemiring>();
  } else if (name == "tropicalz") {
    fn.template operator()<TropicalZSemiring>();
  } else if (name == "counting") {
    fn.template operator()<CountingSemiring>();
  } else if (name == "viterbi") {
    fn.template operator()<ViterbiSemiring>();
  } else if (name == "fuzzy") {
    fn.template operator()<FuzzySemiring>();
  } else if (name == "lukasiewicz") {
    fn.template operator()<LukasiewiczSemiring>();
  } else if (name == "capacity") {
    fn.template operator()<CapacitySemiring>();
  } else if (name == "arctic") {
    fn.template operator()<ArcticSemiring>();
  } else {
    return false;
  }
  return true;
}

/// Renders one semiring value; the inverse of ParseSemiringValue up to
/// numeric formatting.
template <Semiring S>
std::string FormatSemiringValue(typename S::Value v) {
  if constexpr (std::is_same_v<typename S::Value, bool>) {
    return v ? "true" : "false";
  } else {
    return S::ToString(v);
  }
}

/// Parses one semiring value from its textual form (see file comment).
template <Semiring S>
Result<typename S::Value> ParseSemiringValue(std::string_view token) {
  using Value = typename S::Value;
  auto fail = [&token]() {
    return Result<Value>::Error("bad " + S::Name() + " value `" +
                                std::string(token) + "`");
  };
  const std::string s(token);
  // The identities parse by their exact rendering ("inf" for Tropical 0,
  // "-inf" for Arctic 0, "true"/"false" for Boolean, ...). Matching the
  // semiring's own ToString — rather than mapping "inf" to a type-wide
  // extreme — keeps parsing the inverse of FormatSemiringValue and never
  // admits out-of-domain values (e.g. INT64_MAX is not an Arctic element
  // and would overflow its unguarded Times).
  if (s == FormatSemiringValue<S>(S::Zero())) return S::Zero();
  if (s == FormatSemiringValue<S>(S::One())) return S::One();
  if constexpr (std::is_same_v<Value, bool>) {
    if (s == "1") return true;
    if (s == "0") return false;
    return fail();
  } else if constexpr (std::is_same_v<Value, uint64_t>) {
    try {
      size_t used = 0;
      if (s.empty() || s[0] == '-') return fail();
      uint64_t v = std::stoull(s, &used);
      if (used != s.size()) return fail();
      return v;
    } catch (...) {
      return fail();
    }
  } else if constexpr (std::is_same_v<Value, int64_t>) {
    try {
      size_t used = 0;
      int64_t v = std::stoll(s, &used);
      if (used != s.size()) return fail();
      return v;
    } catch (...) {
      return fail();
    }
  } else {
    static_assert(std::is_same_v<Value, double>);
    try {
      size_t used = 0;
      double v = std::stod(s, &used);
      if (used != s.size()) return fail();
      return v;
    } catch (...) {
      return fail();
    }
  }
}

}  // namespace pipeline
}  // namespace dlcirc

#endif  // DLCIRC_PIPELINE_SEMIRING_REGISTRY_H_
