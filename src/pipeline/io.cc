#include "src/pipeline/io.h"

#include <sstream>
#include <unordered_map>

namespace dlcirc {
namespace pipeline {
namespace internal {

namespace {

std::string Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

}  // namespace

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    fields.push_back(Trim(line.substr(start, comma - start)));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return fields;
}

std::vector<std::pair<int, std::string>> SignificantLines(std::string_view text) {
  std::vector<std::pair<int, std::string>> out;
  std::istringstream in{std::string(text)};
  std::string raw;
  for (int number = 1; std::getline(in, raw); ++number) {
    if (size_t pct = raw.find('%'); pct != std::string::npos) raw.resize(pct);
    if (Trim(raw).empty()) continue;
    out.emplace_back(number, raw);
  }
  return out;
}

}  // namespace internal

Result<GraphCsv> ParseGraphCsv(std::string_view text, const Program& program) {
  auto error = [](int line, const std::string& message) {
    return Result<GraphCsv>::Error("graph line " + std::to_string(line) + ": " +
                                   message);
  };

  // The binary EDB predicates edges may target; rows without a label are
  // only unambiguous when there is exactly one.
  std::vector<bool> idb = program.IdbMask();
  std::vector<std::string> binary_edbs;
  for (uint32_t p = 0; p < program.num_preds(); ++p) {
    if (!idb[p] && program.arities[p] == 2) {
      binary_edbs.push_back(program.preds.Name(p));
    }
  }
  if (binary_edbs.empty()) {
    return Result<GraphCsv>::Error(
        "program has no binary EDB predicate to receive edges");
  }

  struct Row {
    uint32_t src, dst, label;
  };
  std::vector<Row> rows;
  std::unordered_map<std::string, uint32_t> vertex_ids;
  std::unordered_map<std::string, uint32_t> label_ids;
  GraphCsv out;
  auto vertex = [&](const std::string& name) {
    auto [it, fresh] =
        vertex_ids.emplace(name, static_cast<uint32_t>(out.vertex_names.size()));
    if (fresh) out.vertex_names.push_back(name);
    return it->second;
  };

  for (const auto& [number, line] : internal::SignificantLines(text)) {
    std::vector<std::string> fields = internal::SplitCsvLine(line);
    if (fields.size() != 2 && fields.size() != 3) {
      return error(number, "expected `src,dst[,label]`");
    }
    if (fields[0].empty() || fields[1].empty()) {
      return error(number, "empty vertex name");
    }
    std::string label_name;
    if (fields.size() == 3 && !fields[2].empty()) {
      label_name = fields[2];
    } else if (binary_edbs.size() == 1) {
      label_name = binary_edbs[0];
    } else {
      return error(number,
                   "unlabeled edge but the program has " +
                       std::to_string(binary_edbs.size()) +
                       " binary EDB predicates; add an explicit label");
    }
    uint32_t pred = program.preds.Find(label_name);
    if (pred == Interner::kNotFound || idb[pred]) {
      return error(number, "label `" + label_name +
                               "` is not an EDB predicate of the program");
    }
    if (program.arities[pred] != 2) {
      return error(number, "EDB predicate `" + label_name + "` is not binary");
    }
    auto [it, fresh] =
        label_ids.emplace(label_name, static_cast<uint32_t>(out.label_preds.size()));
    if (fresh) out.label_preds.push_back(label_name);
    rows.push_back({vertex(fields[0]), vertex(fields[1]), it->second});
  }
  if (rows.empty()) return Result<GraphCsv>::Error("graph file has no edges");

  out.graph = LabeledGraph(static_cast<uint32_t>(out.vertex_names.size()),
                           static_cast<uint32_t>(out.label_preds.size()));
  for (const Row& r : rows) out.graph.AddEdge(r.src, r.dst, r.label);
  return out;
}

}  // namespace pipeline
}  // namespace dlcirc
