#include "src/pipeline/chain_planner.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/constructions/finite_rpq_circuit.h"
#include "src/datalog/analysis.h"
#include "src/graph/labeled_graph.h"
#include "src/lang/cfg.h"
#include "src/lang/chain_datalog.h"
#include "src/util/check.h"

namespace dlcirc {
namespace pipeline {

namespace {

constexpr uint32_t kNoLabel = 0xffffffffu;

/// Trie-shaped NFA accepting exactly `words` (each a label-id sequence).
/// Finite languages are regular; this is the constructive witness.
Nfa TrieNfa(const std::vector<std::vector<uint32_t>>& words,
            uint32_t num_labels) {
  Nfa nfa;
  nfa.num_states = 1;  // root
  nfa.num_labels = num_labels;
  nfa.start = 0;
  nfa.accept = {false};
  std::vector<std::unordered_map<uint32_t, uint32_t>> children(1);
  for (const std::vector<uint32_t>& word : words) {
    uint32_t state = 0;
    for (uint32_t label : word) {
      auto [it, inserted] = children[state].try_emplace(label, nfa.num_states);
      if (inserted) {
        nfa.transitions.push_back({state, label, nfa.num_states});
        nfa.accept.push_back(false);
        children.emplace_back();
        ++nfa.num_states;
      }
      state = it->second;
    }
    nfa.accept[state] = true;
  }
  return nfa;
}

std::string GroundedReason(const std::string& pred_name,
                           const std::string& why) {
  return "L(" + pred_name + ") " + why +
         ": grounded/TC construction (Theorems 5.6-5.7)";
}

}  // namespace

Result<ChainRoute> PlanChainRoute(const Program& program,
                                  ChainPlannerOptions options) {
  Result<Cfg> cfg_r = ChainProgramToCfg(program);
  if (!cfg_r.ok()) return Result<ChainRoute>::Error(cfg_r.error());
  const Cfg& cfg = cfg_r.value();
  ProgramAnalysis a = Analyze(program);

  ChainRoute route;
  // Label alphabet: EDB predicates in program id order — the same order
  // LeftLinearChainToNfa and ChainProgramToCfg's terminal interner use, so
  // label id == CFG terminal id == ChainNfa label id.
  for (size_t p = 0; p < program.num_preds(); ++p) {
    if (!a.idb_mask[p]) {
      route.label_preds.push_back(program.preds.Name(static_cast<uint32_t>(p)));
    }
  }
  for (uint32_t l = 0; l < route.label_preds.size(); ++l) {
    DLCIRC_CHECK_EQ(cfg.terminals().Find(route.label_preds[l]), l)
        << "CFG terminal order diverged from the EDB label order";
  }

  // Every IDB predicate with a non-empty language must be finite for the
  // finite route: the grounded program serves provenance for all of them,
  // and one infinite predicate already makes the workload TC-hard.
  Result<ChainNfa> nfa_r = LeftLinearChainToNfa(program);
  if (nfa_r.ok()) {
    route.left_linear = true;
    const ChainNfa& cn = nfa_r.value();
    for (size_t p = 0; p < program.num_preds(); ++p) {
      if (!a.idb_mask[p]) continue;
      uint32_t state = cn.pred_state[p];
      DLCIRC_CHECK_NE(state, ChainNfa::kNoState);
      Nfa nfa = cn.nfa;
      nfa.accept.assign(nfa.num_states, false);
      nfa.accept[state] = true;
      Dfa dfa = Dfa::Determinize(nfa).Minimize();
      if (dfa.IsEmptyLanguage()) continue;
      if (!dfa.IsFiniteLanguage()) {
        route.reason = GroundedReason(
            program.preds.Name(static_cast<uint32_t>(p)),
            "is infinite (regular pumping, Theorem 5.9)");
        return route;
      }
      uint32_t longest = dfa.LongestAcceptedWordLength();
      route.pred_langs.push_back(
          {static_cast<uint32_t>(p), std::move(dfa), longest});
    }
  } else {
    for (size_t p = 0; p < program.num_preds(); ++p) {
      if (!a.idb_mask[p]) continue;
      const std::string& name = program.preds.Name(static_cast<uint32_t>(p));
      Cfg sub = cfg;
      uint32_t nt = cfg.nonterminals().Find(name);
      DLCIRC_CHECK_NE(nt, Interner::kNotFound);
      sub.SetStart(nt);
      if (sub.IsEmptyLanguage()) continue;
      if (!sub.IsFiniteLanguage()) {
        route.reason =
            GroundedReason(name, "is infinite (CFG pumping, Prop 5.5)");
        return route;
      }
      std::optional<uint32_t> longest = sub.LongestWordLength();
      DLCIRC_CHECK(longest.has_value());
      if (*longest > options.max_word_length) {
        route.reason = GroundedReason(
            name, "is finite but its longest word (" +
                      std::to_string(*longest) + ") exceeds the planner cap (" +
                      std::to_string(options.max_word_length) + ")");
        return route;
      }
      std::vector<std::vector<uint32_t>> words =
          sub.EnumerateWords(*longest, options.max_words + 1);
      DLCIRC_CHECK(!words.empty());
      if (words.size() > options.max_words) {
        route.reason = GroundedReason(
            name, "is finite but has more than " +
                      std::to_string(options.max_words) +
                      " words (planner cap)");
        return route;
      }
      Dfa dfa = Dfa::Determinize(TrieNfa(
                    words, static_cast<uint32_t>(route.label_preds.size())))
                    .Minimize();
      route.pred_langs.push_back(
          {static_cast<uint32_t>(p), std::move(dfa), *longest});
    }
  }

  route.finite = true;
  for (const PredLanguage& pl : route.pred_langs) {
    route.longest_word = std::max(route.longest_word, pl.longest_word);
  }
  route.reason = "every chain language is finite (longest word " +
                 std::to_string(route.longest_word) +
                 "): finite-RPQ construction (Theorem 5.8)";
  return route;
}

std::string RouteReason(const ChainRoute& route, bool plus_idempotent) {
  if (!route.finite || plus_idempotent) return route.reason;
  return "every chain language is finite (longest word " +
         std::to_string(route.longest_word) +
         "), but the semiring is not plus-idempotent — the finite-RPQ "
         "construction sums per word, the program per derivation — so the "
         "grounded construction serves it (Theorems 5.6-5.7)";
}

Result<Circuit> BuildFiniteChainCircuit(const ChainRoute& route,
                                        const Program& program,
                                        const Database& db,
                                        const GroundedProgram& grounded) {
  DLCIRC_CHECK(route.finite) << "finite route required";
  std::vector<uint32_t> label_of(program.num_preds(), kNoLabel);
  for (uint32_t l = 0; l < route.label_preds.size(); ++l) {
    uint32_t pred = program.preds.Find(route.label_preds[l]);
    DLCIRC_CHECK_NE(pred, Interner::kNotFound);
    label_of[pred] = l;
  }

  // The EDB as a labeled graph: vertex id = domain constant id, one edge
  // per fact, the fact's provenance variable as the edge variable.
  LabeledGraph graph(
      static_cast<uint32_t>(db.domain().size()),
      std::max<uint32_t>(1, static_cast<uint32_t>(route.label_preds.size())));
  std::vector<uint32_t> edge_vars;
  edge_vars.reserve(db.num_facts());
  for (uint32_t var = 0; var < db.num_facts(); ++var) {
    const Database::FactInfo& f = db.fact(var);
    if (label_of[f.pred] == kNoLabel || f.tuple.size() != 2) {
      return Result<Circuit>::Error(
          "EDB fact " + db.FactToString(program, var) +
          " is not a binary chain edge; the finite-RPQ construction needs a "
          "labeled-graph EDB");
    }
    graph.AddEdge(f.tuple[0], f.tuple[1], label_of[f.pred]);
    edge_vars.push_back(var);
  }

  std::vector<const PredLanguage*> lang_of(program.num_preds(), nullptr);
  for (const PredLanguage& pl : route.pred_langs) lang_of[pl.pred] = &pl;

  // Grounded IDB facts grouped by (pred, source vertex): one unrolling of
  // the graph x DFA product per group covers every target vertex at once.
  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>>
      by_source;  // (pred << 32 | src) -> [(dst, fact id)]
  const std::vector<GroundedProgram::IdbFact>& facts = grounded.idb_facts();
  for (uint32_t i = 0; i < facts.size(); ++i) {
    DLCIRC_CHECK_EQ(facts[i].tuple.size(), 2u) << "chain IDBs are binary";
    uint64_t key = (static_cast<uint64_t>(facts[i].pred) << 32) |
                   facts[i].tuple[0];
    by_source[key].push_back({facts[i].tuple[1], i});
  }

  // Any-semiring builder (no absorptive rewrites), like FiniteRpqCircuit;
  // the optimizer passes apply the key's semiring-class rewrites later. The
  // in-edge index is hoisted: one O(n+m) build serves every source
  // unrolling.
  CircuitBuilder b(db.num_facts());
  std::vector<std::vector<uint32_t>> in_edges = graph.InEdgeIndex();
  std::vector<GateId> outputs(grounded.num_idb_facts(), b.Zero());
  for (const auto& [key, group] : by_source) {
    uint32_t pred = static_cast<uint32_t>(key >> 32);
    uint32_t src = static_cast<uint32_t>(key & 0xffffffffu);
    const PredLanguage* pl = lang_of[pred];
    if (pl == nullptr) {
      return Result<Circuit>::Error(
          "grounded fact of `" + program.preds.Name(pred) +
          "` but the route has no language for it (planner/grounder "
          "disagreement)");
    }
    std::vector<std::vector<GateId>> terms =
        FiniteRpqReachTerms(b, graph, in_edges, edge_vars, pl->dfa, src);
    for (const auto& [dst, fact_id] : group) {
      outputs[fact_id] = b.PlusN(terms[dst]);
    }
  }
  return b.Build(std::move(outputs));
}

}  // namespace pipeline
}  // namespace dlcirc
