// The Section 5 dichotomy planner for chain-Datalog / RPQ workloads.
//
// Proposition 5.2 identifies basic chain programs with CFGs; Theorems
// 5.6-5.9 split them by *language finiteness*:
//
//   finite L    -> a circuit of size O(m) and depth O(log n) exists
//                  (Theorem 5.8; finite languages are regular, so the
//                  graph x DFA product unrolled LongestWord steps covers
//                  every matched path), while
//   infinite L  -> the program is transitive-closure-hard and the layered
//                  grounded construction (Theorems 5.6/5.7) is the right
//                  tool.
//
// PlanChainRoute runs that decision for a whole program — every IDB
// predicate's language, not just the target's, since the grounded program
// serves provenance for all of them — and, on the finite side, compiles
// each predicate's language to a minimized DFA over the EDB-label
// alphabet:
//
//   * left-linear programs (Prop 5.2's regular case) go through
//     LeftLinearChainToNfa with the accept set re-targeted per predicate,
//     then Dfa::Determinize/Minimize and Dfa::IsFiniteLanguage;
//   * general chain programs go through Cfg::IsFiniteLanguage and
//     Cfg::LongestWordLength per start symbol, enumerate the (finite) word
//     set, and build a trie DFA. Enumeration is capped
//     (ChainPlannerOptions); a blown cap routes to grounded rather than
//     building an unbounded circuit.
//
// BuildFiniteChainCircuit then emits the Theorem 5.8 construction as a
// normal multi-output circuit — output i is the provenance of grounded IDB
// fact i, the same contract as the grounded and UVG constructions — so the
// optimizer passes, EvalPlan, batching, incremental updates, serving, and
// snapshots downstream apply unchanged.
//
// Exactness: the DFA run of a word is unique, so each matched path
// contributes once per *word*, while the grounded program sums once per
// *derivation*. The two coincide whenever duplicate identical terms
// collapse, i.e. over plus-idempotent semirings; Session::Compile enforces
// that (non-idempotent keys route to grounded).
//
// Since the cost-based planner landed (src/pipeline/planner.h), this module
// is one candidate generator among several: PlanChainRoute feeds the
// PlannerContext's chain-shape facts and the kFiniteRpq candidate, next to
// the Section 4 bounded route and the Theorem 5.6/5.7 path constructions.
// RouteChainConstruction (the PR 5 `--grammar` front door) remains as the
// dichotomy-only resolver.
#ifndef DLCIRC_PIPELINE_CHAIN_PLANNER_H_
#define DLCIRC_PIPELINE_CHAIN_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/circuit/circuit.h"
#include "src/datalog/ast.h"
#include "src/datalog/database.h"
#include "src/datalog/grounding.h"
#include "src/lang/dfa.h"
#include "src/util/result.h"

namespace dlcirc {
namespace pipeline {

struct ChainPlannerOptions {
  /// Per-predicate cap on enumerated words (general, non-left-linear CFGs
  /// only). Exceeding it routes the program to grounded.
  size_t max_words = 4096;
  /// Cap on the longest enumerated word, same fallback.
  uint32_t max_word_length = 64;
};

/// One IDB predicate's finite chain language, compiled to a DFA over the
/// planner's EDB-label alphabet (label id -> ChainRoute::label_preds).
struct PredLanguage {
  uint32_t pred = 0;        ///< program predicate id
  Dfa dfa;                  ///< minimized; L(dfa) = the predicate's language
  uint32_t longest_word = 0;
};

/// The routing decision for one basic chain program.
struct ChainRoute {
  bool finite = false;       ///< finite branch (Theorem 5.8) applies
  bool left_linear = false;  ///< decided via the NFA/DFA pipeline
  std::string reason;        ///< human-readable routing explanation
  std::vector<std::string> label_preds;  ///< DFA label id -> EDB pred name
  /// Finite routes only: one entry per IDB predicate with a non-empty
  /// language. Predicates with empty languages derive no facts and need no
  /// DFA.
  std::vector<PredLanguage> pred_langs;
  uint32_t longest_word = 0;  ///< max over pred_langs (the unrolling bound)
};

/// Decides the route for `program` (see file comment). Fails when the
/// program is not basic chain Datalog.
Result<ChainRoute> PlanChainRoute(const Program& program,
                                  ChainPlannerOptions options = {});

/// The routing explanation for a resolved (route, semiring) pair — what
/// Session::RouteChainConstruction actually decides. Differs from
/// route.reason exactly when a finite language still routes to grounded
/// because the semiring is not plus-idempotent.
std::string RouteReason(const ChainRoute& route, bool plus_idempotent);

/// Builds the Theorem 5.8 multi-output circuit for a finite route: inputs
/// are the EDB provenance variables of `db`, output i the provenance of
/// grounded IDB fact i. Requires route.finite; fails when the EDB contains
/// a fact of a predicate the route has no language for (a non-binary or
/// non-EDB label — impossible for databases loaded against the same chain
/// program).
Result<Circuit> BuildFiniteChainCircuit(const ChainRoute& route,
                                        const Program& program,
                                        const Database& db,
                                        const GroundedProgram& grounded);

}  // namespace pipeline
}  // namespace dlcirc

#endif  // DLCIRC_PIPELINE_CHAIN_PLANNER_H_
