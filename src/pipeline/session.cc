#include "src/pipeline/session.h"

#include <utility>

#include "src/analysis/verify.h"
#include "src/constructions/grounded_circuit.h"
#include "src/constructions/path_circuits.h"
#include "src/constructions/uvg_circuit.h"
#include "src/datalog/parser.h"
#include "src/graph/graph_db.h"
#include "src/lang/chain_datalog.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pipeline/io.h"
#include "src/util/check.h"

namespace dlcirc {
namespace pipeline {

namespace {
double MsSince(uint64_t start_ns) {
  return static_cast<double>(obs::NowNs() - start_ns) * 1e-6;
}
}  // namespace

Session::Session(Program program, SessionOptions options)
    : program_(std::move(program)),
      options_(options),
      evaluator_(std::make_unique<eval::Evaluator>(options.eval)) {}

Result<Session> Session::FromDatalog(std::string_view program_text,
                                     SessionOptions options) {
  const uint64_t t0 = obs::NowNs();
  obs::TraceSpan span("compile", "parse");
  Result<Program> program = ParseProgram(program_text);
  if (!program.ok()) return Result<Session>::Error(program.error());
  Session session(std::move(program).value(), options);
  session.phases_.parse_ms = MsSince(t0);
  return session;
}

Result<Session> Session::FromCfg(const Cfg& cfg, SessionOptions options) {
  if (cfg.IsEmptyLanguage()) {
    return Result<Session>::Error(
        "CFG generates the empty language; no reachability program to run");
  }
  const uint64_t t0 = obs::NowNs();
  obs::TraceSpan span("compile", "parse");
  Session session(CfgToChainProgram(cfg), options);
  session.phases_.parse_ms = MsSince(t0);
  return session;
}

Result<bool> Session::LoadFactsText(std::string_view facts_text) {
  if (db_.has_value()) return Result<bool>::Error("EDB already loaded");
  Result<Database> db = ParseFacts(program_, facts_text);
  if (!db.ok()) return Result<bool>::Error(db.error());
  db_ = std::move(db).value();
  return true;
}

Result<bool> Session::LoadGraphCsv(std::string_view csv_text) {
  if (db_.has_value()) return Result<bool>::Error("EDB already loaded");
  Result<GraphCsv> parsed = ParseGraphCsv(csv_text, program_);
  if (!parsed.ok()) return Result<bool>::Error(parsed.error());
  GraphCsv csv = std::move(parsed).value();
  GraphDatabase gdb = GraphToDatabase(program_, csv.graph, csv.label_preds,
                                      &csv.vertex_names);
  db_ = std::move(gdb.db);
  edge_vars_ = std::move(gdb.edge_vars);
  return true;
}

const Database& Session::db() const {
  DLCIRC_CHECK(db_.has_value()) << "no EDB loaded";
  return *db_;
}

const GroundedProgram& Session::grounded() {
  DLCIRC_CHECK(db_.has_value()) << "no EDB loaded";
  if (!grounded_.has_value()) {
    const uint64_t t0 = obs::NowNs();
    obs::TraceSpan span("compile", "ground");
    grounded_ = Ground(program_, *db_);
    phases_.ground_ms = MsSince(t0);
  }
  return *grounded_;
}

const Result<ChainRoute>& Session::chain_route() {
  if (!chain_route_.has_value()) {
    const uint64_t t0 = obs::NowNs();
    obs::TraceSpan span("compile", "route");
    chain_route_ = PlanChainRoute(program_);
    phases_.route_ms = MsSince(t0);
  }
  return *chain_route_;
}

Result<Construction> Session::RouteChainConstruction(bool plus_idempotent) {
  const Result<ChainRoute>& route = chain_route();
  if (!route.ok()) return Result<Construction>::Error(route.error());
  return route.value().finite && plus_idempotent ? Construction::kFiniteRpq
                                                 : Construction::kGrounded;
}

const PlannerContext& Session::planner_context() {
  if (!planner_context_.has_value()) {
    // Force the prerequisites first so ground/route phase attribution stays
    // clean, then time only the context build itself under route_ms.
    const GroundedProgram& g = grounded();
    const Result<ChainRoute>& route = chain_route();
    const uint64_t t0 = obs::NowNs();
    obs::TraceSpan span("compile", "route");
    planner_context_ = BuildPlannerContext(program_, db(), g, route);
    phases_.route_ms += MsSince(t0);
  }
  return *planner_context_;
}

RouteDecision Session::PlanConstruction(const SemiringTraits& traits,
                                        const PlannerOptions& options) {
  return PlanRoute(planner_context(), traits, options);
}

Result<std::shared_ptr<const CompiledPlan>> Session::Compile(const PlanKey& key) {
  using Out = Result<std::shared_ptr<const CompiledPlan>>;
  if (!db_.has_value()) return Out::Error("no EDB loaded");
  if (auto it = plan_cache_.find(key); it != plan_cache_.end()) {
    ++stats_.plan_cache_hits;
    return it->second;
  }
  if (key.construction == Construction::kUvg &&
      !(key.absorptive && key.plus_idempotent)) {
    return Out::Error(
        "the UVG construction (Theorem 6.2) is only sound over absorptive "
        "semirings; use the grounded construction instead");
  }
  if (key.construction == Construction::kFiniteRpq && !key.plus_idempotent) {
    return Out::Error(
        "the finite-RPQ construction (Theorem 5.8) sums once per word while "
        "the program sums once per derivation; only plus-idempotent "
        "semirings collapse the difference — use the grounded construction "
        "instead");
  }
  if (key.construction == Construction::kBounded) {
    const PlannerContext& ctx = planner_context();
    if (ctx.bounded.verdict != BoundednessReport::Verdict::kBounded) {
      return Out::Error(
          "the bounded construction (Theorem 4.3) needs a boundedness "
          "verdict, and none was found" +
          std::string(ctx.bounded.horizon_limited
                          ? " within the expansion horizon (Theorem 4.5 "
                            "semi-decision)"
                          : " (the program is unbounded)") +
          " — use the grounded construction instead");
    }
    if (ctx.bounded.chain_exact ? !key.plus_idempotent
                                : !(key.absorptive && key.times_idempotent)) {
      return Out::Error(
          ctx.bounded.chain_exact
              ? "the chain-exact bound truncates repeated unit cycles, which "
                "is only sound over plus-idempotent semirings — use the "
                "grounded construction instead"
              : "the Chom boundedness verdict (Theorem 4.6) only transfers "
                "to absorptive times-idempotent semirings (Corollary 4.7) — "
                "use the grounded construction instead");
    }
  }
  if (key.construction == Construction::kBellmanFord ||
      key.construction == Construction::kRepeatedSquaring) {
    const PlannerContext& ctx = planner_context();
    if (!key.absorptive) {
      return Out::Error(
          "the Theorem 5.6/5.7 path constructions sum over walks up to a "
          "layer bound; only absorptive semirings collapse the longer walks "
          "— use the grounded construction instead");
    }
    if (!ctx.sigma_plus || !ctx.binary_edb || !ctx.binary_idb) {
      return Out::Error(
          "the Theorem 5.6/5.7 path constructions apply to TC-shaped chain "
          "programs (every non-empty language Sigma+ over a binary EDB) — "
          "use the grounded construction instead");
    }
    if (key.construction == Construction::kRepeatedSquaring &&
        ctx.has_diagonal_fact) {
      return Out::Error(
          "a grounded IDB fact P(v,v) exists (closed walks) and the "
          "repeated-squaring matrix fixes the diagonal at 1 — use "
          "bellman-ford instead");
    }
  }

  auto compiled = std::make_shared<CompiledPlan>();
  compiled->key = key;
  Circuit built;
  uint64_t t0 = obs::NowNs();
  obs::TraceSpan construct_span("compile", "construct");
  switch (key.construction) {
    case Construction::kGrounded:
    case Construction::kBounded: {
      GroundedCircuitOptions options;
      // kBounded is the grounded construction truncated at the Theorem 4.3
      // layer cap; serve channels key plans with max_layers = 0, so the cap
      // comes from the planner context rather than the key.
      options.max_layers = key.max_layers != 0 ? key.max_layers
                           : key.construction == Construction::kBounded
                               ? planner_context().bounded_layer_cap
                               : 0;
      options.builder.plus_idempotent = key.plus_idempotent;
      options.builder.absorptive = key.absorptive;
      GroundedCircuitResult r = GroundedProgramCircuit(grounded(), options);
      built = std::move(r.circuit);
      compiled->layers_used = r.layers_used;
      compiled->reached_fixpoint = r.reached_structural_fixpoint ||
                                   key.construction == Construction::kBounded;
      break;
    }
    case Construction::kUvg: {
      UvgResult r = UvgCircuit(grounded());
      built = std::move(r.circuit);
      compiled->layers_used = r.stages_used;
      compiled->reached_fixpoint = true;  // UVG always covers all proofs
      break;
    }
    case Construction::kFiniteRpq: {
      const Result<ChainRoute>& route = chain_route();
      if (!route.ok()) return Out::Error(route.error());
      if (!route.value().finite) {
        return Out::Error(
            "the finite-RPQ construction does not apply: " +
            route.value().reason);
      }
      Result<Circuit> built_r =
          BuildFiniteChainCircuit(route.value(), program_, db(), grounded());
      if (!built_r.ok()) return Out::Error(built_r.error());
      built = std::move(built_r).value();
      // The unrolling bound plays the role the ICO layer count plays for
      // the grounded construction, and the construction covers every
      // matched path by definition.
      compiled->layers_used = route.value().longest_word;
      compiled->reached_fixpoint = true;
      break;
    }
    case Construction::kBellmanFord:
    case Construction::kRepeatedSquaring: {
      Result<EdbGraph> graph_r = EdbAsGraph(program_, db());
      if (!graph_r.ok()) return Out::Error(graph_r.error());
      const EdbGraph& eg = graph_r.value();
      std::vector<std::pair<uint32_t, uint32_t>> outputs;
      const std::vector<GroundedProgram::IdbFact>& facts =
          grounded().idb_facts();
      outputs.reserve(facts.size());
      for (const GroundedProgram::IdbFact& f : facts) {
        DLCIRC_CHECK_EQ(f.tuple.size(), 2u) << "gated on binary_idb above";
        outputs.push_back({f.tuple[0], f.tuple[1]});
      }
      const uint32_t n = eg.graph.num_vertices();
      if (key.construction == Construction::kBellmanFord) {
        built = BellmanFordCircuitMulti(eg.graph, eg.edge_vars,
                                        db().num_facts(), outputs,
                                        key.max_layers);
        compiled->layers_used = key.max_layers != 0 ? key.max_layers : n;
      } else {
        built = RepeatedSquaringCircuit(eg.graph, eg.edge_vars,
                                        db().num_facts(), outputs);
        uint32_t rounds = 0;
        for (uint32_t len = 1; len < n; len *= 2) ++rounds;
        compiled->layers_used = rounds;
      }
      // Both constructions cover every walk length that can matter
      // (absorption collapses the rest) — the plan is a true fixpoint.
      compiled->reached_fixpoint = true;
      break;
    }
  }
  compiled->unoptimized = built.ComputeStats();
  construct_span.End();
  phases_.construct_ms = MsSince(t0);

  eval::PassOptions pass_options;
  pass_options.plus_idempotent = key.plus_idempotent;
  pass_options.absorptive = key.absorptive;
  t0 = obs::NowNs();
  obs::TraceSpan passes_span("compile", "passes");
  eval::PassObserver pass_observer;
#ifndef NDEBUG
  // Debug builds re-verify the circuit at every pass boundary, so a pass
  // that emits an ill-formed circuit is caught with its name attached
  // instead of surfacing as a CHECK deep inside EvalPlan::Build.
  pass_observer = [](std::string_view pass_name, const Circuit& after) {
    std::vector<analysis::Diagnostic> findings = analysis::VerifyCircuit(after);
    const analysis::Diagnostic* e = analysis::FirstError(findings);
    DLCIRC_CHECK(e == nullptr)
        << "optimizer pass `" << std::string(pass_name)
        << "` broke a circuit invariant [" << (e ? e->code : "") << "]: "
        << (e ? e->message : "");
  };
#endif
  eval::PipelineResult optimized =
      eval::OptimizeForEval(built, pass_options, pass_observer);
  compiled->pass_stats = std::move(optimized.stats);
  compiled->circuit = std::move(optimized.circuit);
  passes_span.End();
  phases_.passes_ms = MsSince(t0);
  t0 = obs::NowNs();
  obs::TraceSpan plan_span("compile", "plan_build");
  compiled->plan = eval::EvalPlan::Build(compiled->circuit);
#ifndef NDEBUG
  {
    std::vector<analysis::Diagnostic> findings =
        analysis::VerifyPlan(compiled->plan);
    const analysis::Diagnostic* e = analysis::FirstError(findings);
    DLCIRC_CHECK(e == nullptr) << "EvalPlan::Build broke a plan invariant ["
                               << (e ? e->code : "") << "]: "
                               << (e ? e->message : "");
  }
#endif
  plan_span.End();
  phases_.plan_build_ms = MsSince(t0);

  ++stats_.plan_cache_misses;
  plan_cache_.emplace(key, compiled);
  return std::shared_ptr<const CompiledPlan>(std::move(compiled));
}

void Session::AdoptPlan(std::shared_ptr<const CompiledPlan> plan) {
  DLCIRC_CHECK(plan != nullptr);
  plan_cache_.emplace(plan->key, std::move(plan));
}

const std::vector<uint32_t>& Session::TargetFacts() {
  return grounded().target_facts();
}

Result<uint32_t> Session::FindFact(std::string_view pred_name,
                                   const std::vector<std::string>& constants) {
  uint32_t pred = program_.preds.Find(pred_name);
  if (pred == Interner::kNotFound) {
    return Result<uint32_t>::Error("unknown predicate `" + std::string(pred_name) +
                                   "`");
  }
  if (!program_.IdbMask()[pred]) {
    return Result<uint32_t>::Error("`" + std::string(pred_name) +
                                   "` is an EDB predicate; queries name IDB facts");
  }
  if (program_.arities[pred] != constants.size()) {
    return Result<uint32_t>::Error(
        "`" + std::string(pred_name) + "` has arity " +
        std::to_string(program_.arities[pred]) + ", got " +
        std::to_string(constants.size()) + " arguments");
  }
  Tuple tuple;
  for (const std::string& c : constants) {
    uint32_t id = db().domain().Find(c);
    // A constant outside the active domain cannot appear in a derivable
    // fact; the query is well-formed and its provenance is 0.
    if (id == Interner::kNotFound) return kNotFound;
    tuple.push_back(id);
  }
  return grounded().FindIdbFact(pred, tuple);
}

std::string Session::FactName(uint32_t idb_fact) {
  return grounded().FactToString(program_, db(), idb_fact);
}

std::string Session::EdbFactName(uint32_t var) const {
  return db().FactToString(program_, var);
}

uint64_t Session::ProgramDigest() {
  if (!program_digest_.has_value()) {
    // Program::ToString renders interned names, so two programs that parse
    // to the same rules digest equally regardless of source whitespace or
    // comments. The target predicate is part of the rendering's identity.
    Fnv1a64 h;
    h.String(program_.ToString());
    h.String(program_.preds.Name(program_.target_pred));
    program_digest_ = h.digest();
  }
  return *program_digest_;
}

uint64_t Session::EdbDigest() {
  if (!edb_digest_.has_value()) {
    const Database& d = db();
    // Facts in provenance-variable order: the digest pins not just the set
    // of facts but the variable numbering a tagging lane is written in.
    Fnv1a64 h;
    h.U32(d.num_facts());
    for (uint32_t v = 0; v < d.num_facts(); ++v) {
      h.String(d.FactToString(program_, v));
    }
    edb_digest_ = h.digest();
  }
  return *edb_digest_;
}

}  // namespace pipeline
}  // namespace dlcirc
