// The pipeline front door: one object that owns the paper's whole flow
// (Sections 2-6) —
//
//   program (Datalog text or CFG workload)      src/lang, src/datalog
//     -> EDB (facts text or edge-list graph)    src/datalog, src/graph
//     -> relevant grounding                     src/datalog/grounding
//     -> provenance circuit construction        src/constructions
//     -> optimizer pass pipeline                src/eval/passes
//     -> compiled EvalPlan                      src/eval/evaluator
//     -> batched semiring taggings              src/eval/batch
//     -> incremental tag updates                src/eval/delta
//
// The expensive prefix (ground once, build once, optimize once, compile
// once) is cached per PlanKey = (construction, semiring-class flags, layer
// bound); the program and EDB are fixed per Session, so repeated tagging
// requests — the serving path — hit the cache and go straight to the batch
// evaluator, and served batches stay live for sparse per-lane updates
// (ServeTags/UpdateTags). tools/dlcirc_cli.cc is the command-line face of
// this API.
#ifndef DLCIRC_PIPELINE_SESSION_H_
#define DLCIRC_PIPELINE_SESSION_H_

#include <any>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/circuit/circuit.h"
#include "src/datalog/ast.h"
#include "src/datalog/database.h"
#include "src/datalog/grounding.h"
#include "src/eval/batch.h"
#include "src/eval/delta.h"
#include "src/eval/evaluator.h"
#include "src/eval/passes.h"
#include "src/lang/cfg.h"
#include "src/pipeline/chain_planner.h"
#include "src/pipeline/planner.h"
#include "src/util/hash.h"
#include "src/util/result.h"

namespace dlcirc {
namespace pipeline {

/// Everything that identifies one compiled plan for a fixed (program, EDB):
/// which construction (src/pipeline/planner.h), which semiring-class
/// rewrites the circuit may use (mirroring CircuitBuilder::Options /
/// eval::PassOptions), and the ICO layer bound for the grounded family
/// (0 = the construction's own safe default).
struct PlanKey {
  Construction construction = Construction::kGrounded;
  bool plus_idempotent = true;
  bool absorptive = true;
  /// Only keyed for kBounded: no rewrite consumes it, but the Theorem 4.3
  /// truncation of a Chom-derived bound is sound exactly over absorptive
  /// times-idempotent semirings, and Tropical/Fuzzy agree on every other
  /// flag — without this bit they would share a bounded plan unsoundly.
  /// For<S> zeroes it elsewhere so all other constructions keep their
  /// cross-semiring plan sharing.
  bool times_idempotent = false;
  uint32_t max_layers = 0;

  /// Key with the rewrite flags a given semiring permits.
  template <Semiring S>
  static PlanKey For(Construction c = Construction::kGrounded) {
    return {c, S::kIsIdempotent, S::kIsAbsorptive,
            c == Construction::kBounded && S::kIsTimesIdempotent, 0};
  }

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    // Pack every field into one word, then run the splitmix finalizer so the
    // bits spread over the whole size_t. (The obvious shifted-XOR combine is
    // a trap here: size_t may be 32 bits, where `construction << 34` is
    // gone entirely and all flag combinations collide; and even on 64 bits
    // unordered_map only consumes the hash modulo a bucket count, so
    // max_layers must not sit verbatim in the low bits.)
    uint64_t packed = static_cast<uint64_t>(k.max_layers) |
                      (static_cast<uint64_t>(k.construction) << 32) |
                      (static_cast<uint64_t>(k.plus_idempotent) << 40) |
                      (static_cast<uint64_t>(k.absorptive) << 41) |
                      (static_cast<uint64_t>(k.times_idempotent) << 42);
    return static_cast<size_t>(SplitMix64(packed));
  }
};

/// One cached compilation: the optimized circuit, its EvalPlan, and the
/// provenance of how it was produced. Immutable and shared; output i of
/// both `circuit` and `plan` computes the provenance of IDB fact i.
struct CompiledPlan {
  PlanKey key;
  Circuit circuit;
  eval::EvalPlan plan;
  std::vector<eval::PassStats> pass_stats;  ///< optimizer pipeline shrinkage
  Circuit::Stats unoptimized;               ///< construction output, pre-passes
  uint32_t layers_used = 0;  ///< ICO layers (grounded) or stages (UVG)
  bool reached_fixpoint = false;  ///< grounded: structural fixpoint hit early
};

struct SessionStats {
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t incremental_updates = 0;    ///< UpdateTags calls served
  uint64_t incremental_fallbacks = 0;  ///< of those, full re-evaluations
};

/// Wall-clock breakdown of the compile pipeline, milliseconds. Parse and
/// ground are once per Session; route is the chain-planner analysis (PR 5's
/// dichotomy decision); construct/passes/plan_build reflect the MOST RECENT
/// Compile miss (a cache hit leaves them untouched). Phases are timed
/// unconditionally — each runs at most once per compiled plan, so two clock
/// reads per phase vanish against the work they bracket — which is what
/// lets `dlcirc run --profile` report them even when the flag is parsed
/// after the session was built.
struct PhaseProfile {
  double parse_ms = 0;       ///< Datalog/CFG text -> Program
  double ground_ms = 0;      ///< relevant grounding
  double route_ms = 0;       ///< chain-planner dichotomy analysis
  double construct_ms = 0;   ///< provenance circuit construction
  double passes_ms = 0;      ///< optimizer pass pipeline
  double plan_build_ms = 0;  ///< EvalPlan::Build
};

/// A batch of taggings kept live for incremental updates: one materialized
/// EvalState per lane, pinned to the compiled plan it was evaluated through.
/// Owned by the Session (type-erased); users go through ServeTags/UpdateTags.
template <Semiring S>
struct ServedTagBatch {
  PlanKey key;
  std::shared_ptr<const CompiledPlan> plan;
  std::vector<uint32_t> facts;             ///< served IDB fact ids
  std::vector<eval::EvalState<S>> lanes;   ///< one state per tagging lane
  eval::IncrementalEvaluator incremental;
};

struct SessionOptions {
  eval::EvalOptions eval;  ///< worker-pool configuration for the evaluator
};

class Session {
 public:
  /// Parses a Datalog program (src/datalog/parser.h syntax).
  static Result<Session> FromDatalog(std::string_view program_text,
                                     SessionOptions options = {});
  /// Adopts a CFG workload via the chain-Datalog correspondence (Prop 5.2):
  /// terminal a becomes binary EDB a, the start symbol the target.
  static Result<Session> FromCfg(const Cfg& cfg, SessionOptions options = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Loads the EDB from ground-fact text (src/datalog/parser.h syntax).
  /// A Session's EDB may be loaded exactly once.
  Result<bool> LoadFactsText(std::string_view facts_text);

  /// Loads the EDB from edge-list graph CSV (src/pipeline/io.h syntax).
  Result<bool> LoadGraphCsv(std::string_view csv_text);

  const Program& program() const { return program_; }
  bool has_database() const { return db_.has_value(); }
  const Database& db() const;
  /// Edge index -> provenance variable; empty unless graph-loaded.
  const std::vector<uint32_t>& edge_vars() const { return edge_vars_; }

  /// The grounded program (computed lazily, once). Requires a loaded EDB.
  const GroundedProgram& grounded();

  /// The Section 5 dichotomy analysis for this session's program (which
  /// must be basic chain Datalog), computed lazily once and cached: per-
  /// predicate language finiteness plus, on the finite side, the DFAs the
  /// kFiniteRpq construction compiles from. EDB-independent.
  const Result<ChainRoute>& chain_route();

  /// Resolves the dichotomy to a construction: kFiniteRpq when every chain
  /// language is finite AND the serving semiring is plus-idempotent (the
  /// finite construction sums per word, the grounded one per derivation;
  /// idempotent plus collapses the difference), else kGrounded. Fails when
  /// the program is not basic chain.
  Result<Construction> RouteChainConstruction(bool plus_idempotent);

  /// Everything the cost-based planner knows about this (program, EDB) —
  /// chain shape, Sigma+ detection, the Section 4 boundedness verdict, and
  /// the instance statistics the cost model scores with. Computed lazily
  /// once (it subsumes chain_route() and grounding) and shared by every
  /// per-semiring PlanConstruction call. Requires a loaded EDB.
  const PlannerContext& planner_context();

  /// The cost-based routing decision for one request semiring: scores every
  /// construction over planner_context() and returns the full plan tree
  /// (src/pipeline/planner.h). decision.construction is what
  /// `--construction auto` compiles. Requires a loaded EDB.
  RouteDecision PlanConstruction(const SemiringTraits& traits,
                                 const PlannerOptions& options = {});

  /// Compiles (or returns the cached) plan for `key`. Fails when the key is
  /// inconsistent (UVG without absorptive flags, bounded without a
  /// boundedness verdict, ...). Requires a loaded EDB.
  Result<std::shared_ptr<const CompiledPlan>> Compile(const PlanKey& key);

  /// Adopts an externally obtained plan (a deserialized snapshot,
  /// src/serve/snapshot.h) into the plan cache under plan->key, so the
  /// serving paths (TagBatch/ServeTags/UpdateTags) use it instead of
  /// recompiling. A plan already cached for that key wins (the cache never
  /// flips out from under live served batches); the caller is responsible
  /// for the plan matching this session's program and EDB — which is what
  /// snapshot digests verify.
  void AdoptPlan(std::shared_ptr<const CompiledPlan> plan);

  const SessionStats& stats() const { return stats_; }
  const PhaseProfile& phase_profile() const { return phases_; }
  eval::Evaluator& evaluator() { return *evaluator_; }

  /// Content digests identifying what a compiled plan was built from, for
  /// the serving layer's plan registry and snapshot files (src/serve): two
  /// sessions agree on both digests iff they parsed an equivalent program
  /// and loaded the same EDB facts in the same provenance-variable order.
  /// Computed over canonical renderings (FNV-1a), stable across runs and
  /// platforms. EdbDigest requires a loaded EDB; both are cached.
  uint64_t ProgramDigest();
  uint64_t EdbDigest();

  /// IDB fact ids of the target predicate (grounds if needed).
  const std::vector<uint32_t>& TargetFacts();
  /// Grounded id of IDB fact pred(constants), kNotFound when the fact is
  /// not derivable (its provenance is 0), or an error for unknown
  /// predicates/constants or arity mismatches.
  Result<uint32_t> FindFact(std::string_view pred_name,
                            const std::vector<std::string>& constants);
  static constexpr uint32_t kNotFound = GroundedProgram::kNotFound;

  /// Renderings for output: IDB fact id -> "T(s,t)", EDB var -> "E(s,u1)".
  std::string FactName(uint32_t idb_fact);
  std::string EdbFactName(uint32_t var) const;

  /// The serving path: evaluates the provenance of `facts` (IDB fact ids;
  /// kNotFound entries yield 0) under every tagging lane at once, through
  /// the cached plan for `key`. Each lane must supply db().num_facts()
  /// values. result[lane][i] is the value of facts[i] under lane `lane`.
  template <Semiring S>
  Result<std::vector<std::vector<typename S::Value>>> TagBatch(
      const PlanKey& key,
      const std::vector<std::vector<typename S::Value>>& taggings,
      const std::vector<uint32_t>& facts) {
    using Out = std::vector<std::vector<typename S::Value>>;
    if (!has_database()) return Result<Out>::Error("no EDB loaded");
    if (taggings.empty()) return Result<Out>::Error("empty tagging batch");
    for (const auto& lane : taggings) {
      if (lane.size() != db().num_facts()) {
        return Result<Out>::Error(
            "tagging lane has " + std::to_string(lane.size()) + " values; EDB has " +
            std::to_string(db().num_facts()) + " facts");
      }
    }
    auto compiled = Compile(key);
    if (!compiled.ok()) return Result<Out>::Error(compiled.error());
    const CompiledPlan& plan = *compiled.value();
    Out all = eval::EvaluateBatch<S>(*evaluator_, plan.plan, taggings);
    Out out(taggings.size());
    for (size_t lane = 0; lane < all.size(); ++lane) {
      out[lane].reserve(facts.size());
      for (uint32_t f : facts) {
        out[lane].push_back(f == kNotFound ? S::Zero() : all[lane][f]);
      }
    }
    return out;
  }

  /// Like TagBatch, but keeps the batch live for sparse updates: every lane
  /// is materialized into an EvalState pinned to the cached plan, and
  /// subsequent UpdateTags<S> calls refresh single lanes incrementally. A
  /// Session serves one batch at a time; calling ServeTags again (over any
  /// semiring) replaces the previous served batch.
  template <Semiring S>
  Result<std::vector<std::vector<typename S::Value>>> ServeTags(
      const PlanKey& key,
      const std::vector<std::vector<typename S::Value>>& taggings,
      const std::vector<uint32_t>& facts) {
    using Out = std::vector<std::vector<typename S::Value>>;
    if (!has_database()) return Result<Out>::Error("no EDB loaded");
    if (taggings.empty()) return Result<Out>::Error("empty tagging batch");
    for (const auto& lane : taggings) {
      if (lane.size() != db().num_facts()) {
        return Result<Out>::Error(
            "tagging lane has " + std::to_string(lane.size()) +
            " values; EDB has " + std::to_string(db().num_facts()) + " facts");
      }
    }
    auto compiled = Compile(key);
    if (!compiled.ok()) return Result<Out>::Error(compiled.error());
    ServedTagBatch<S> served{
        key, compiled.value(), facts, {},
        eval::IncrementalEvaluator(*evaluator_, eval::DeltaOptions::For<S>())};
    // One tiled batch sweep materializes every lane (not one full plan walk
    // per lane) — same amortization as the TagBatch serving path.
    served.lanes = served.incremental.template MaterializeBatch<S>(
        served.plan->plan, taggings);
    Out out;
    out.reserve(taggings.size());
    for (const auto& lane : served.lanes) {
      out.push_back(ServedFactValues<S>(served, lane));
    }
    served_ = std::move(served);
    return out;
  }

  /// Applies a sparse delta (EDB provenance variable -> new tag) to one lane
  /// of the served batch and returns the refreshed values of the served
  /// facts, propagated incrementally through the cached plan (src/eval/delta).
  template <Semiring S>
  Result<std::vector<typename S::Value>> UpdateTags(
      size_t batch_lane, const eval::TagDelta<S>& delta) {
    using Out = std::vector<typename S::Value>;
    auto* served = std::any_cast<ServedTagBatch<S>>(&served_);
    if (served == nullptr) {
      return Result<Out>::Error("no served " + S::Name() +
                                " tag batch; call ServeTags first");
    }
    if (batch_lane >= served->lanes.size()) {
      return Result<Out>::Error(
          "lane " + std::to_string(batch_lane) + " out of range; batch has " +
          std::to_string(served->lanes.size()) + " lane(s)");
    }
    for (const eval::TagUpdate<S>& u : delta) {
      if (u.var >= db().num_facts()) {
        return Result<Out>::Error(
            "tag update names EDB variable x" + std::to_string(u.var) +
            "; EDB has " + std::to_string(db().num_facts()) + " facts");
      }
    }
    eval::DeltaStats st = served->incremental.template Update<S>(
        served->plan->plan, &served->lanes[batch_lane], delta);
    ++stats_.incremental_updates;
    if (st.full_fallback) ++stats_.incremental_fallbacks;
    return ServedFactValues<S>(*served, served->lanes[batch_lane]);
  }

  /// True when a batch over S is live for UpdateTags<S>.
  template <Semiring S>
  bool has_served_batch() const {
    return std::any_cast<ServedTagBatch<S>>(&served_) != nullptr;
  }

 private:
  explicit Session(Program program, SessionOptions options);

  /// Served-fact values of one lane (kNotFound facts are Zero). Reads the
  /// served facts' slots directly — O(served facts), not O(all outputs):
  /// on big plans every IDB fact is an output, and copying them all per
  /// update would dwarf the incremental propagation this path exists for.
  template <Semiring S>
  static std::vector<typename S::Value> ServedFactValues(
      const ServedTagBatch<S>& served, const eval::EvalState<S>& lane) {
    const eval::EvalPlan& plan = served.plan->plan;
    std::vector<typename S::Value> out;
    out.reserve(served.facts.size());
    for (uint32_t f : served.facts) {
      out.push_back(f == kNotFound
                        ? S::Zero()
                        : static_cast<typename S::Value>(
                              lane.slots[plan.output_slots()[f]]));
    }
    return out;
  }

  Program program_;
  SessionOptions options_;
  std::optional<Database> db_;
  std::vector<uint32_t> edge_vars_;
  std::optional<GroundedProgram> grounded_;
  std::optional<Result<ChainRoute>> chain_route_;
  std::optional<PlannerContext> planner_context_;
  std::unordered_map<PlanKey, std::shared_ptr<const CompiledPlan>, PlanKeyHash>
      plan_cache_;
  std::unique_ptr<eval::Evaluator> evaluator_;
  std::any served_;  ///< ServedTagBatch<S> for the serving semiring, if any
  SessionStats stats_;
  PhaseProfile phases_;
  std::optional<uint64_t> program_digest_;
  std::optional<uint64_t> edb_digest_;
};

}  // namespace pipeline
}  // namespace dlcirc

#endif  // DLCIRC_PIPELINE_SESSION_H_
