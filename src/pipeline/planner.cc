#include "src/pipeline/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/lang/chain_datalog.h"
#include "src/lang/dfa.h"
#include "src/util/check.h"

namespace dlcirc {
namespace pipeline {

namespace {

double Lg(double x) { return std::log2(std::max(2.0, x)); }

/// Structural test for L(dfa) = Sigma+ on a *minimized* DFA: exactly two
/// states — a non-accepting start and an accepting sink — with every label
/// moving both into the sink. (Deciding L = Sigma+ is undecidable for CFGs
/// but trivial for the regular languages left-linear chain programs have.)
bool DfaIsSigmaPlus(const Dfa& dfa) {
  if (dfa.num_labels() == 0 || dfa.num_states() != 2) return false;
  const uint32_t start = dfa.start();
  const uint32_t sink = 1 - start;
  if (dfa.accept(start) || !dfa.accept(sink)) return false;
  for (uint32_t l = 0; l < dfa.num_labels(); ++l) {
    if (dfa.Next(start, l) != static_cast<int32_t>(sink)) return false;
    if (dfa.Next(sink, l) != static_cast<int32_t>(sink)) return false;
  }
  return true;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

std::string TraitsSummary(const SemiringTraits& t) {
  std::string out;
  if (t.plus_idempotent) out += "plus-idempotent";
  if (t.times_idempotent) out += std::string(out.empty() ? "" : ", ") + "times-idempotent";
  if (t.absorptive) out += std::string(out.empty() ? "" : ", ") + "absorptive";
  if (out.empty()) out = "no class flags";
  return out;
}

}  // namespace

std::string_view ConstructionName(Construction c) {
  switch (c) {
    case Construction::kGrounded:
      return "grounded";
    case Construction::kUvg:
      return "uvg";
    case Construction::kFiniteRpq:
      return "finite-rpq";
    case Construction::kBounded:
      return "bounded";
    case Construction::kBellmanFord:
      return "bellman-ford";
    case Construction::kRepeatedSquaring:
      return "repeated-squaring";
  }
  return "?";
}

Result<Construction> ParseConstruction(std::string_view name) {
  if (name == "grounded") return Construction::kGrounded;
  if (name == "uvg") return Construction::kUvg;
  if (name == "finite-rpq") return Construction::kFiniteRpq;
  if (name == "bounded") return Construction::kBounded;
  if (name == "bellman-ford") return Construction::kBellmanFord;
  if (name == "repeated-squaring") return Construction::kRepeatedSquaring;
  return Result<Construction>::Error(
      "unknown construction `" + std::string(name) +
      "` (expected grounded, uvg, finite-rpq, bounded, bellman-ford, or "
      "repeated-squaring)");
}

PlannerContext BuildPlannerContext(const Program& program, const Database& db,
                                   const GroundedProgram& grounded,
                                   const Result<ChainRoute>& chain_route,
                                   const ExpansionLimits& limits) {
  PlannerContext ctx;
  ctx.analysis = Analyze(program);

  if (chain_route.ok()) {
    ctx.is_chain = true;
    ctx.chain_finite = chain_route.value().finite;
    ctx.chain_longest_word = chain_route.value().longest_word;
    ctx.chain_reason = chain_route.value().reason;
  } else {
    ctx.chain_reason = chain_route.error();
  }

  // Sigma+ detection. The chain route carries DFAs only on the finite side,
  // so the infinite side rebuilds them: left-linear programs only — the
  // structural test needs a minimized DFA per predicate.
  if (ctx.is_chain && !ctx.chain_finite) {
    Result<ChainNfa> nfa_r = LeftLinearChainToNfa(program);
    if (nfa_r.ok()) {
      const ChainNfa& cn = nfa_r.value();
      bool all_sigma_plus = true;
      bool any_nonempty = false;
      for (size_t p = 0; p < program.num_preds(); ++p) {
        if (!ctx.analysis.idb_mask[p]) continue;
        const uint32_t state = cn.pred_state[p];
        DLCIRC_CHECK_NE(state, ChainNfa::kNoState);
        Nfa nfa = cn.nfa;
        nfa.accept.assign(nfa.num_states, false);
        nfa.accept[state] = true;
        Dfa dfa = Dfa::Determinize(nfa).Minimize();
        if (dfa.IsEmptyLanguage()) continue;
        if (!DfaIsSigmaPlus(dfa)) {
          all_sigma_plus = false;
          break;
        }
        any_nonempty = true;
      }
      ctx.sigma_plus = all_sigma_plus && any_nonempty;
    }
  }

  ctx.bounded = CheckBoundedness(program, limits);
  if (ctx.bounded.verdict == BoundednessReport::Verdict::kBounded) {
    // Chain-exact bounds count word length; ICO layers must also cover
    // unit-rule chains between length-reducing steps, hence the
    // (num_preds+1) factor. Chom bounds count rule applications, which
    // dominate derivation-tree height directly.
    ctx.bounded_layer_cap =
        ctx.bounded.chain_exact
            ? (ctx.bounded.bound + 1) *
                      (static_cast<uint32_t>(program.num_preds()) + 1) +
                  1
            : ctx.bounded.bound + 1;
  }

  ctx.grounded_size = grounded.TotalSize();
  ctx.num_idb_facts = grounded.num_idb_facts();
  ctx.num_vertices = static_cast<uint32_t>(db.domain().size());
  std::vector<uint32_t> indeg(ctx.num_vertices, 0);
  for (uint32_t var = 0; var < db.num_facts(); ++var) {
    const auto& tuple = db.fact(var).tuple;
    if (tuple.size() != 2) {
      ctx.binary_edb = false;
      continue;
    }
    ++ctx.num_edges;
    ctx.max_indegree = std::max(ctx.max_indegree, ++indeg[tuple[1]]);
  }
  // All-source BFS diameter of the EDB graph, for the grounded depth cap
  // (see PlannerContext::edb_diameter_bound). Budgeted: O(V * (V + E)) is
  // plan-time-only work, so probe up to 4096 vertices and leave the bound
  // unknown (0) beyond that — estimates must never dominate compile time.
  // Unary facts (vertex labels like A(x)) are not edges, so the probe runs
  // over the binary-fact subgraph whether or not the whole EDB is binary.
  constexpr uint32_t kDiameterProbeLimit = 4096;
  if (ctx.num_edges > 0 && ctx.num_vertices <= kDiameterProbeLimit) {
    std::vector<std::vector<uint32_t>> adj(ctx.num_vertices);
    for (uint32_t var = 0; var < db.num_facts(); ++var) {
      const auto& tuple = db.fact(var).tuple;
      if (tuple.size() == 2) adj[tuple[0]].push_back(tuple[1]);
    }
    std::vector<uint32_t> dist(ctx.num_vertices);
    std::vector<uint32_t> queue;
    queue.reserve(ctx.num_vertices);
    for (uint32_t src = 0; src < ctx.num_vertices; ++src) {
      if (adj[src].empty()) continue;
      dist.assign(ctx.num_vertices, UINT32_MAX);
      dist[src] = 0;
      queue.clear();
      queue.push_back(src);
      for (size_t head = 0; head < queue.size(); ++head) {
        const uint32_t u = queue[head];
        for (uint32_t w : adj[u]) {
          if (dist[w] != UINT32_MAX) continue;
          dist[w] = dist[u] + 1;
          ctx.edb_diameter_bound = std::max(ctx.edb_diameter_bound, dist[w]);
          queue.push_back(w);
        }
      }
    }
  }
  std::vector<bool> is_source(ctx.num_vertices, false);
  for (const auto& fact : grounded.idb_facts()) {
    if (fact.tuple.size() != 2) {
      ctx.binary_idb = false;
      continue;
    }
    if (fact.tuple[0] == fact.tuple[1]) ctx.has_diagonal_fact = true;
    if (!is_source[fact.tuple[0]]) {
      is_source[fact.tuple[0]] = true;
      ++ctx.num_idb_sources;
    }
  }
  return ctx;
}

RouteDecision PlanRoute(const PlannerContext& c, const SemiringTraits& s,
                        const PlannerOptions& o) {
  const double g = static_cast<double>(std::max<uint64_t>(1, c.grounded_size));
  const double n_idb = std::max<uint32_t>(1, c.num_idb_facts);
  const double m = std::max<uint32_t>(1, c.num_edges);
  const double v = std::max<uint32_t>(1, c.num_vertices);
  // Depth of one ICO layer: a PlusN over the ground rules of a fact, each a
  // TimesN — log of the average fan-in, plus the two gate levels.
  const double layer_depth = 2.0 + Lg(g / n_idb + 1.0);

  RouteDecision d;
  d.depth_weight = o.depth_weight;
  auto reject = [&](Construction cons, std::string reason) {
    d.candidates.push_back({cons, false, std::move(reason), 0, 0, 0});
  };
  auto score = [&](Construction cons, std::string reason, double est_size,
                   double est_depth) {
    d.candidates.push_back({cons, true, std::move(reason), est_size, est_depth,
                            est_size + o.depth_weight * est_depth});
  };

  // kGrounded (Theorem 3.1): always applicable; the baseline everything
  // else must beat. The depth estimate is instance-aware (the E17 gap):
  // on a graph-shaped EDB the structural fixpoint lands after about
  // diameter-many ICO layers, so a shallow instance must not be priced at
  // the num_idb_facts+1 static worst case — that mispriced depth is what
  // made depth-motivated routes beat forced-grounded picks that E17
  // measured as faster. Compile still iterates to the true fixpoint; this
  // caps only the cost estimate.
  double grounded_layers = n_idb + 1;
  std::string grounded_reason =
      "always applicable (Theorem 3.1): " +
      std::to_string(c.num_idb_facts + 1) + " ICO layers worst case";
  if (c.edb_diameter_bound > 0 && c.edb_diameter_bound + 1 < grounded_layers) {
    grounded_layers = c.edb_diameter_bound + 1;
    grounded_reason = "always applicable (Theorem 3.1): ~" +
                      std::to_string(c.edb_diameter_bound + 1) +
                      " ICO layers (EDB diameter bound; static worst case " +
                      std::to_string(c.num_idb_facts + 1) + ")";
  }
  score(Construction::kGrounded, std::move(grounded_reason), g * (n_idb + 1),
        grounded_layers * layer_depth);

  // kUvg (Theorem 6.2).
  if (!(s.absorptive && s.plus_idempotent)) {
    reject(Construction::kUvg, "needs an absorptive semiring (Theorem 6.2); " +
                                   s.name + " is not absorptive");
  } else if (!c.analysis.is_linear) {
    reject(Construction::kUvg,
           "program is not linear, so no polynomial-fringe guarantee "
           "(Corollary 6.3)");
  } else if (!c.analysis.is_recursive) {
    reject(Construction::kUvg,
           "program is not recursive; the grounded construction already "
           "converges in O(1) layers");
  } else {
    score(Construction::kUvg,
          "linear recursive program over an absorptive semiring: depth "
          "O(log^2 m) with a polynomial fringe (Theorem 6.2, Corollary 6.3)",
          g * n_idb, Lg(g) * Lg(g));
  }

  // kFiniteRpq (Theorem 5.8).
  if (!c.is_chain) {
    reject(Construction::kFiniteRpq,
           "not a basic chain program: " + c.chain_reason);
  } else if (!c.chain_finite) {
    reject(Construction::kFiniteRpq, c.chain_reason);
  } else if (!s.plus_idempotent) {
    reject(Construction::kFiniteRpq,
           "finite chain languages, but " + s.name +
               " is not plus-idempotent (the construction sums per word, "
               "the program per derivation)");
  } else {
    score(Construction::kFiniteRpq,
          c.chain_reason + "; size O(m), depth O(log n)",
          m * (c.chain_longest_word + 1) + n_idb,
          Lg(c.chain_longest_word + 1) + Lg(m));
  }

  // kBounded (Theorem 4.3 via Section 4 boundedness).
  if (c.bounded.verdict != BoundednessReport::Verdict::kBounded) {
    reject(Construction::kBounded,
           c.bounded.horizon_limited
               ? "no bound found within the expansion horizon (Theorem 4.5 "
                 "semi-decision)"
               : "program is unbounded");
  } else if (c.bounded.chain_exact ? !s.plus_idempotent
                                   : !(s.absorptive && s.times_idempotent)) {
    reject(Construction::kBounded,
           c.bounded.chain_exact
               ? "chain-exact bound " + std::to_string(c.bounded.bound) +
                     ", but " + s.name +
                     " is not plus-idempotent, so truncating repeated unit "
                     "cycles changes the sum"
               : "Chom bound " + std::to_string(c.bounded.bound) + ", but " +
                     s.name +
                     " is outside Chom (absorptive + times-idempotent), so "
                     "Corollary 4.7 does not transfer the bound");
  } else {
    score(Construction::kBounded,
          std::string("bounded (") +
              (c.bounded.chain_exact ? "chain-exact, Prop 5.5"
                                     : "Chom semi-decision, Theorem 4.6") +
              ", bound " + std::to_string(c.bounded.bound) + "): " +
              std::to_string(c.bounded_layer_cap) +
              " ICO layers suffice, depth O(log n) (Theorem 4.3)",
          g * std::max<uint32_t>(1, c.bounded_layer_cap),
          std::max<uint32_t>(1, c.bounded_layer_cap) * layer_depth);
  }

  // kBellmanFord / kRepeatedSquaring (Theorems 5.6/5.7): TC-shaped chain
  // programs, i.e. every non-empty language is Sigma+.
  std::string tc_shape_rejection;
  if (!c.is_chain) {
    tc_shape_rejection = "not a basic chain program: " + c.chain_reason;
  } else if (!c.sigma_plus) {
    tc_shape_rejection =
        "not TC-shaped: some chain language differs from Sigma+ (or the "
        "program is finite/not left-linear)";
  } else if (!c.binary_edb || !c.binary_idb) {
    tc_shape_rejection = "EDB/IDB facts are not all binary edges";
  } else if (!s.absorptive) {
    tc_shape_rejection = "needs an absorptive semiring; " + s.name +
                         " is not absorptive (walks beyond the layer bound "
                         "would not be absorbed)";
  }
  if (!tc_shape_rejection.empty()) {
    reject(Construction::kBellmanFord, tc_shape_rejection);
    reject(Construction::kRepeatedSquaring, tc_shape_rejection);
  } else {
    const double srcs = std::max<uint32_t>(1, c.num_idb_sources);
    score(Construction::kBellmanFord,
          "TC-shaped chain program: layered Bellman-Ford relaxation, size "
          "O(mn) — wins on sparse graphs (Theorem 5.6)",
          m * v * srcs, v * (1.0 + Lg(c.max_indegree + 1.0)));
    if (c.has_diagonal_fact) {
      reject(Construction::kRepeatedSquaring,
             "a grounded IDB fact P(v,v) exists (closed walks); the "
             "repeated-squaring matrix fixes the diagonal at 1 — use "
             "bellman-ford");
    } else {
      score(Construction::kRepeatedSquaring,
            "TC-shaped chain program: repeated matrix squaring, size "
            "O(n^3 log n), depth O(log^2 n) — wins on dense graphs "
            "(Theorem 5.7)",
            v * v * v * Lg(v), Lg(v) * (Lg(v) + 1.0));
    }
  }

  // Lowest score wins; enum order (grounded first) breaks ties.
  const PlanCandidate* best = nullptr;
  for (const PlanCandidate& cand : d.candidates) {
    if (!cand.applicable) continue;
    if (best == nullptr || cand.score < best->score) best = &cand;
  }
  DLCIRC_CHECK(best != nullptr) << "kGrounded is always applicable";
  d.construction = best->construction;
  d.reason = best->reason;
  return d;
}

std::string RenderExplainText(const RouteDecision& d,
                              const SemiringTraits& traits) {
  std::string out = "plan tree (semiring " + traits.name + ": " +
                    TraitsSummary(traits) +
                    "), chosen: " + std::string(ConstructionName(d.construction)) +
                    "\n";
  for (const PlanCandidate& cand : d.candidates) {
    out += (cand.construction == d.construction ? "  * " : "    ");
    out += std::string(ConstructionName(cand.construction));
    if (cand.applicable) {
      out += "  score " + Num(cand.score) + " = size " + Num(cand.est_size) +
             " + " + Num(d.depth_weight) + " x depth " + Num(cand.est_depth);
    } else {
      out += "  inapplicable";
    }
    out += "\n        " + cand.reason + "\n";
  }
  return out;
}

std::string RenderExplainJson(const RouteDecision& d,
                              const SemiringTraits& traits) {
  std::string out = "{\"semiring\": \"" + JsonEscape(traits.name) +
                    "\", \"construction\": \"" +
                    std::string(ConstructionName(d.construction)) +
                    "\", \"reason\": \"" + JsonEscape(d.reason) +
                    "\", \"candidates\": [";
  for (size_t i = 0; i < d.candidates.size(); ++i) {
    const PlanCandidate& cand = d.candidates[i];
    if (i > 0) out += ", ";
    out += "{\"construction\": \"" +
           std::string(ConstructionName(cand.construction)) +
           "\", \"applicable\": " + (cand.applicable ? "true" : "false");
    if (cand.applicable) {
      out += ", \"score\": " + Num(cand.score) +
             ", \"est_size\": " + Num(cand.est_size) +
             ", \"est_depth\": " + Num(cand.est_depth);
    }
    out += ", \"reason\": \"" + JsonEscape(cand.reason) + "\"}";
  }
  out += "]}";
  return out;
}

Result<EdbGraph> EdbAsGraph(const Program& program, const Database& db) {
  EdbGraph out;
  out.graph = LabeledGraph(static_cast<uint32_t>(db.domain().size()), 1);
  out.edge_vars.reserve(db.num_facts());
  for (uint32_t var = 0; var < db.num_facts(); ++var) {
    const auto& tuple = db.fact(var).tuple;
    if (tuple.size() != 2) {
      return Result<EdbGraph>::Error(
          "EDB fact " + db.FactToString(program, var) +
          " is not a binary edge; the Theorem 5.6/5.7 constructions need a "
          "graph-shaped EDB");
    }
    out.graph.AddEdge(tuple[0], tuple[1], 0);
    out.edge_vars.push_back(var);
  }
  return out;
}

}  // namespace pipeline
}  // namespace dlcirc
