#include "src/boundedness/cq.h"

#include <sstream>

#include "src/util/check.h"

namespace dlcirc {

std::string Cq::ToString(const Program& program) const {
  std::ostringstream ss;
  ss << "(";
  for (size_t i = 0; i < free_vars.size(); ++i) {
    if (i > 0) ss << ",";
    ss << "v" << free_vars[i];
  }
  ss << ") :- ";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << program.preds.Name(atoms[i].pred) << "(";
    for (size_t j = 0; j < atoms[i].args.size(); ++j) {
      if (j > 0) ss << ",";
      const Term& t = atoms[i].args[j];
      if (t.IsVar()) {
        ss << "v" << t.id;
      } else {
        ss << program.consts.Name(t.id);
      }
    }
    ss << ")";
  }
  return ss.str();
}

namespace {

constexpr uint32_t kUnmapped = 0xffffffffu;

// Backtracking: map atoms of `from` one by one onto atoms of `to`.
bool Extend(const Cq& from, const Cq& to, size_t atom_idx,
            std::vector<uint32_t>& var_map) {
  if (atom_idx == from.atoms.size()) return true;
  const Atom& a = from.atoms[atom_idx];
  for (const Atom& b : to.atoms) {
    if (b.pred != a.pred || b.args.size() != a.args.size()) continue;
    // Try mapping a -> b.
    std::vector<std::pair<uint32_t, uint32_t>> added;
    bool ok = true;
    for (size_t i = 0; i < a.args.size() && ok; ++i) {
      const Term& ta = a.args[i];
      const Term& tb = b.args[i];
      if (!ta.IsVar()) {
        // Constant must match exactly (constants map to themselves).
        ok = !tb.IsVar() && tb.id == ta.id;
      } else if (var_map[ta.id] == kUnmapped) {
        if (!tb.IsVar()) {
          // Variables may map to constants; encode as high range.
          var_map[ta.id] = 0x80000000u | tb.id;
        } else {
          var_map[ta.id] = tb.id;
        }
        added.push_back({ta.id, var_map[ta.id]});
      } else {
        uint32_t want = tb.IsVar() ? tb.id : (0x80000000u | tb.id);
        ok = var_map[ta.id] == want;
      }
    }
    if (ok && Extend(from, to, atom_idx + 1, var_map)) return true;
    for (auto& [v, _] : added) var_map[v] = kUnmapped;
  }
  return false;
}

}  // namespace

bool CqHomomorphismExists(const Cq& from, const Cq& to) {
  DLCIRC_CHECK_EQ(from.free_vars.size(), to.free_vars.size());
  std::vector<uint32_t> var_map(from.num_vars, kUnmapped);
  for (size_t i = 0; i < from.free_vars.size(); ++i) {
    var_map[from.free_vars[i]] = to.free_vars[i];
  }
  return Extend(from, to, 0, var_map);
}

CanonicalDb BuildCanonicalDb(const Program& program, const Cq& cq) {
  CanonicalDb out{Database(program), {}, {}};
  out.var_const.resize(cq.num_vars);
  for (uint32_t v = 0; v < cq.num_vars; ++v) {
    out.var_const[v] = out.db.InternConst("cq_v" + std::to_string(v));
  }
  for (const Atom& a : cq.atoms) {
    Tuple t;
    t.reserve(a.args.size());
    for (const Term& term : a.args) {
      if (term.IsVar()) {
        t.push_back(out.var_const[term.id]);
      } else {
        t.push_back(out.db.InternConst(program.consts.Name(term.id)));
      }
    }
    out.fact_of_atom.push_back(out.db.AddFact(a.pred, t));
  }
  return out;
}

}  // namespace dlcirc
