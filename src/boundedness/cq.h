// Conjunctive queries, canonical databases, homomorphisms and containment —
// the machinery behind the boundedness characterizations of Section 4.
//
// Containment over the class Chom (absorptive x-idempotent semirings,
// Theorem 4.6) and over the Booleans coincides with the classical
// Chandra-Merlin criterion: Q1 is contained in Q2 iff there is a
// homomorphism Q2 -> Q1 fixing the free variables pointwise.
#ifndef DLCIRC_BOUNDEDNESS_CQ_H_
#define DLCIRC_BOUNDEDNESS_CQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/datalog/ast.h"
#include "src/datalog/database.h"

namespace dlcirc {

/// A conjunctive query over the predicates of some Program. Terms are
/// variables in a CQ-local variable space [0, num_vars) or program constants.
struct Cq {
  std::vector<Atom> atoms;
  std::vector<uint32_t> free_vars;  ///< answer variables, in answer order
  uint32_t num_vars = 0;

  std::string ToString(const Program& program) const;
};

/// True iff a homomorphism `from` -> `to` exists mapping from.free_vars[i]
/// to to.free_vars[i] (free arities must match) and each atom of `from` to
/// an atom of `to`. Backtracking search.
bool CqHomomorphismExists(const Cq& from, const Cq& to);

/// Chandra-Merlin containment: q1 contained in q2 (over B, and over every
/// Chom semiring by [KRS14] as used in Theorem 4.6).
inline bool CqContained(const Cq& q1, const Cq& q2) {
  return CqHomomorphismExists(q2, q1);
}

/// Canonical database of a CQ: one constant "cq_v<i>" per variable, one fact
/// per atom. Returns the database plus the constant of each variable.
struct CanonicalDb {
  Database db;
  std::vector<uint32_t> var_const;  ///< CQ var -> domain constant
  /// fact_of_atom[i] = provenance variable of the fact built from atoms[i]
  /// (facts may coincide when atoms are duplicates).
  std::vector<uint32_t> fact_of_atom;
};
CanonicalDb BuildCanonicalDb(const Program& program, const Cq& cq);

}  // namespace dlcirc

#endif  // DLCIRC_BOUNDEDNESS_CQ_H_
