#include "src/boundedness/expansions.h"

#include <deque>
#include <unordered_set>

#include "src/util/check.h"

namespace dlcirc {

namespace {

// A partial unfolding: EDB atoms accumulated, IDB goals pending.
struct State {
  std::vector<Atom> edb_atoms;
  std::deque<Atom> pending;  // IDB goals
  uint32_t num_vars;
  uint32_t rule_apps;
};

}  // namespace

ExpansionSet EnumerateExpansions(const Program& program,
                                 const ExpansionLimits& limits) {
  std::vector<bool> idb = program.IdbMask();
  // Validate head shapes.
  for (const Rule& r : program.rules) {
    std::unordered_set<uint32_t> seen;
    for (const Term& t : r.head.args) {
      DLCIRC_CHECK(t.IsVar()) << "expansion requires variable head arguments";
      DLCIRC_CHECK(seen.insert(t.id).second)
          << "expansion requires distinct head variables";
    }
  }

  ExpansionSet out;
  // Root: target goal over fresh vars 0..arity-1.
  State root;
  root.num_vars = program.arities[program.target_pred];
  root.rule_apps = 0;
  Atom goal{program.target_pred, {}};
  for (uint32_t i = 0; i < root.num_vars; ++i) goal.args.push_back(Term::Var(i));
  root.pending.push_back(goal);

  std::deque<State> queue = {std::move(root)};
  while (!queue.empty()) {
    State st = std::move(queue.front());
    queue.pop_front();
    if (st.pending.empty()) {
      Expansion e;
      e.cq.atoms = st.edb_atoms;
      e.cq.num_vars = st.num_vars;
      for (uint32_t i = 0; i < program.arities[program.target_pred]; ++i) {
        e.cq.free_vars.push_back(i);
      }
      e.num_rule_apps = st.rule_apps;
      out.expansions.push_back(std::move(e));
      if (out.expansions.size() >= limits.max_expansions) {
        out.truncated = true;
        break;
      }
      continue;
    }
    if (st.rule_apps >= limits.max_rule_apps) {
      out.truncated = true;  // unexpanded branch beyond the horizon
      continue;
    }
    Atom goal_atom = st.pending.front();
    st.pending.pop_front();
    for (const Rule& rule : program.rules) {
      if (rule.head.pred != goal_atom.pred) continue;
      State next = st;
      ++next.rule_apps;
      // Substitution: rule head var -> goal term; other rule vars -> fresh.
      std::vector<Term> sub(program.vars.size(), Term::Var(0xffffffffu));
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        sub[rule.head.args[i].id] = goal_atom.args[i];
      }
      auto resolve = [&](const Term& t) -> Term {
        if (!t.IsVar()) return t;
        if (sub[t.id].IsVar() && sub[t.id].id == 0xffffffffu) {
          sub[t.id] = Term::Var(next.num_vars++);
        }
        return sub[t.id];
      };
      for (const Atom& body_atom : rule.body) {
        Atom inst{body_atom.pred, {}};
        inst.args.reserve(body_atom.args.size());
        for (const Term& t : body_atom.args) inst.args.push_back(resolve(t));
        if (idb[inst.pred]) {
          next.pending.push_back(std::move(inst));
        } else {
          next.edb_atoms.push_back(std::move(inst));
        }
      }
      if (next.pending.size() > limits.max_pending_atoms) {
        out.truncated = true;
        continue;
      }
      queue.push_back(std::move(next));
    }
  }
  if (!queue.empty()) out.truncated = true;
  return out;
}

}  // namespace dlcirc
