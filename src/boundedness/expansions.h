// Expansions of a Datalog program (Theorem 4.5): the infinite family of CQs
// C_0, C_1, ... obtained by unfolding the target predicate with rules until
// no IDB atoms remain, so that T(I) = union_i C_i(I) over any p-stable
// semiring. Enumerated breadth-first by number of rule applications, with
// hard budgets.
#ifndef DLCIRC_BOUNDEDNESS_EXPANSIONS_H_
#define DLCIRC_BOUNDEDNESS_EXPANSIONS_H_

#include <cstdint>
#include <vector>

#include "src/boundedness/cq.h"
#include "src/datalog/ast.h"

namespace dlcirc {

struct Expansion {
  Cq cq;
  uint32_t num_rule_apps = 0;
};

struct ExpansionLimits {
  uint32_t max_rule_apps = 8;
  size_t max_expansions = 5000;
  /// Pending goals above this abort a branch (guards nonlinear blowup).
  size_t max_pending_atoms = 64;
};

/// Enumerates complete expansions of the program's target predicate.
/// Requires every rule head to have distinct variable arguments (true for
/// the corpus; CHECKed). `truncated` is set when a budget was hit, in which
/// case deeper expansions exist beyond the returned ones.
struct ExpansionSet {
  std::vector<Expansion> expansions;
  bool truncated = false;
};
ExpansionSet EnumerateExpansions(const Program& program,
                                 const ExpansionLimits& limits = {});

}  // namespace dlcirc

#endif  // DLCIRC_BOUNDEDNESS_EXPANSIONS_H_
