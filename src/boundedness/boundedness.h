// Boundedness analyses (Section 4).
//
// Boundedness (Definition 4.1) is undecidable in general; this module
// provides:
//   * CheckBoundednessChom — the Theorem 4.5/4.6 semi-decision for
//     absorptive x-idempotent semirings (class Chom) and the Booleans: find
//     N such that every enumerated deeper expansion C_n has a homomorphism
//     from some C_m, m <= N. By Corollary 4.7 the answer is semiring-
//     independent within Chom; by Proposition 4.8 it is exactly
//     "target equivalent to the UCQ of the first N expansions".
//   * CheckBoundednessChain — exact and decidable for basic chain programs
//     over ANY absorptive semiring: boundedness <=> the CFG is finite
//     (Proposition 5.5).
//   * MeasureConvergenceIterations — the empirical observable: naive-
//     evaluation iterations to fixpoint on a given instance.
#ifndef DLCIRC_BOUNDEDNESS_BOUNDEDNESS_H_
#define DLCIRC_BOUNDEDNESS_BOUNDEDNESS_H_

#include <cstdint>

#include "src/boundedness/expansions.h"
#include "src/datalog/ast.h"
#include "src/datalog/database.h"
#include "src/util/result.h"

namespace dlcirc {

struct BoundednessReport {
  enum class Verdict {
    kBounded,        ///< bound found (exact for chain programs)
    kNoBoundFound,   ///< no N worked within the horizon (unbounded as far as
                     ///< the horizon can see; exact for chain programs)
  };
  Verdict verdict = Verdict::kNoBoundFound;
  /// For kBounded: expansions with more than `bound` rule applications are
  /// all contained in the union of the first ones.
  uint32_t bound = 0;
  /// Expansion enumeration hit a budget (the verdict is a semi-decision).
  bool horizon_limited = false;
  /// The verdict came from the exact chain decision (Prop 5.5), in which
  /// case `bound` is the longest word length and both verdicts are exact;
  /// false means the Chom semi-decision produced it and `bound` counts rule
  /// applications. Set by CheckBoundedness.
  bool chain_exact = false;
};

/// Theorem 4.5/4.6 semi-decision (see file comment).
BoundednessReport CheckBoundednessChom(const Program& program,
                                       const ExpansionLimits& limits = {});

/// Proposition 5.5: exact for basic chain programs; errors otherwise.
Result<BoundednessReport> CheckBoundednessChain(const Program& program);

/// The planner-facing combined analysis (src/pipeline/planner.h routes on
/// it): the exact chain decision when the program is basic chain, else the
/// Chom semi-decision. `chain_exact` on the report says which one ran —
/// which matters downstream because the two bounds are sound over
/// different semiring classes (see the planner's kBounded gate).
BoundednessReport CheckBoundedness(const Program& program,
                                   const ExpansionLimits& limits = {});

/// Naive-evaluation iterations to fixpoint over the Boolean semiring for a
/// concrete instance (the Definition 4.1 observable).
uint32_t MeasureConvergenceIterations(const Program& program, const Database& db);

}  // namespace dlcirc

#endif  // DLCIRC_BOUNDEDNESS_BOUNDEDNESS_H_
