#include "src/boundedness/boundedness.h"

#include <algorithm>

#include "src/datalog/engine.h"
#include "src/datalog/grounding.h"
#include "src/lang/chain_datalog.h"
#include "src/semiring/instances.h"

namespace dlcirc {

BoundednessReport CheckBoundednessChom(const Program& program,
                                       const ExpansionLimits& limits) {
  ExpansionSet set = EnumerateExpansions(program, limits);
  BoundednessReport report;
  report.horizon_limited = set.truncated;
  if (set.expansions.empty()) return report;

  uint32_t max_depth = 0;
  for (const Expansion& e : set.expansions) {
    max_depth = std::max(max_depth, e.num_rule_apps);
  }
  if (!set.truncated) {
    // The expansion set is finite (program effectively non-recursive):
    // trivially equivalent to the UCQ of all its expansions (Prop 4.8).
    report.verdict = BoundednessReport::Verdict::kBounded;
    report.bound = max_depth;
    return report;
  }
  // Try N = 0, 1, ...: all expansions deeper than N must be contained in
  // (have a hom from) some expansion of depth <= N (Theorem 4.6).
  for (uint32_t n = 0; n < max_depth; ++n) {
    bool all_covered = true;
    for (const Expansion& deep : set.expansions) {
      if (deep.num_rule_apps <= n) continue;
      bool covered = false;
      for (const Expansion& shallow : set.expansions) {
        if (shallow.num_rule_apps > n) continue;
        if (CqHomomorphismExists(shallow.cq, deep.cq)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) {
      report.verdict = BoundednessReport::Verdict::kBounded;
      report.bound = n;
      return report;
    }
  }
  return report;
}

Result<BoundednessReport> CheckBoundednessChain(const Program& program) {
  Result<Cfg> cfg = ChainProgramToCfg(program);
  if (!cfg.ok()) return Result<BoundednessReport>::Error(cfg.error());
  BoundednessReport report;
  report.horizon_limited = false;  // the decision is exact (Prop 5.5)
  if (cfg.value().IsFiniteLanguage()) {
    report.verdict = BoundednessReport::Verdict::kBounded;
    // A finite language of longest word k converges within k iterations;
    // report the longest-word bound via enumeration up to a safe cap.
    auto lens = cfg.value().ShortestYieldLengths();
    (void)lens;
    report.bound = 0;
    for (const auto& w : cfg.value().EnumerateWords(64, 4096)) {
      report.bound = std::max<uint32_t>(report.bound,
                                        static_cast<uint32_t>(w.size()));
    }
  }
  return report;
}

BoundednessReport CheckBoundedness(const Program& program,
                                   const ExpansionLimits& limits) {
  Result<BoundednessReport> chain = CheckBoundednessChain(program);
  if (chain.ok()) {
    BoundednessReport report = chain.value();
    report.chain_exact = true;
    return report;
  }
  return CheckBoundednessChom(program, limits);
}

uint32_t MeasureConvergenceIterations(const Program& program, const Database& db) {
  GroundedProgram g = Ground(program, db);
  std::vector<bool> edb(db.num_facts(), true);
  auto result = NaiveEvaluate<BooleanSemiring>(g, edb);
  DLCIRC_CHECK(result.converged);
  return result.iterations;
}

}  // namespace dlcirc
