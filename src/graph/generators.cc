#include "src/graph/generators.h"

#include <unordered_set>

namespace dlcirc {

StGraph PathGraph(uint32_t num_edges) {
  StGraph out{LabeledGraph(num_edges + 1, 1), 0, num_edges};
  for (uint32_t i = 0; i < num_edges; ++i) out.graph.AddEdge(i, i + 1, 0);
  return out;
}

StGraph WordPath(const std::vector<uint32_t>& word, uint32_t num_labels) {
  StGraph out{LabeledGraph(static_cast<uint32_t>(word.size()) + 1, num_labels), 0,
              static_cast<uint32_t>(word.size())};
  for (uint32_t i = 0; i < word.size(); ++i) out.graph.AddEdge(i, i + 1, word[i]);
  return out;
}

StGraph CycleWithTails(uint32_t cycle_len) {
  DLCIRC_CHECK_GE(cycle_len, 1u);
  // Vertices: 0 = s, 1..cycle_len = cycle, cycle_len+1 = t.
  StGraph out{LabeledGraph(cycle_len + 2, 1), 0, cycle_len + 1};
  out.graph.AddEdge(0, 1, 0);
  for (uint32_t i = 1; i < cycle_len; ++i) out.graph.AddEdge(i, i + 1, 0);
  out.graph.AddEdge(cycle_len, 1, 0);  // close the cycle
  out.graph.AddEdge(cycle_len, cycle_len + 1, 0);
  return out;
}

StGraph LayeredGraph(uint32_t width, uint32_t layers, double density, Rng& rng) {
  DLCIRC_CHECK_GE(width, 1u);
  DLCIRC_CHECK_GE(layers, 1u);
  uint32_t n = 2 + width * layers;
  StGraph out{LabeledGraph(n, 1), 0, n - 1};
  auto vertex = [&](uint32_t layer, uint32_t i) { return 1 + layer * width + i; };
  for (uint32_t i = 0; i < width; ++i) out.graph.AddEdge(out.s, vertex(0, i), 0);
  for (uint32_t l = 0; l + 1 < layers; ++l) {
    for (uint32_t i = 0; i < width; ++i) {
      bool any = false;
      for (uint32_t j = 0; j < width; ++j) {
        if (rng.NextBool(density)) {
          out.graph.AddEdge(vertex(l, i), vertex(l + 1, j), 0);
          any = true;
        }
      }
      // Guarantee progress so the instance stays connected.
      if (!any) {
        out.graph.AddEdge(vertex(l, i), vertex(l + 1, rng.NextBounded(width)), 0);
      }
    }
  }
  for (uint32_t i = 0; i < width; ++i) out.graph.AddEdge(vertex(layers - 1, i), out.t, 0);
  return out;
}

StGraph RandomGraph(uint32_t n, uint32_t m, uint32_t num_labels, Rng& rng) {
  DLCIRC_CHECK_GE(n, 2u);
  StGraph out{LabeledGraph(n, num_labels), 0, n - 1};
  std::unordered_set<uint64_t> seen;
  uint32_t added = 0;
  uint32_t attempts = 0;
  while (added < m && attempts < 20 * m + 100) {
    ++attempts;
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    if (u == v) continue;
    uint32_t label = static_cast<uint32_t>(rng.NextBounded(num_labels));
    uint64_t key = (static_cast<uint64_t>(u) * n + v) * num_labels + label;
    if (!seen.insert(key).second) continue;
    out.graph.AddEdge(u, v, label);
    ++added;
  }
  return out;
}

StGraph RandomConnectedGraph(uint32_t n, uint32_t m, uint32_t num_labels, Rng& rng) {
  StGraph out = RandomGraph(n, m > n ? m - (n - 1) : 1, num_labels, rng);
  for (uint32_t i = 0; i + 1 < n; ++i) {
    out.graph.AddEdge(i, i + 1, static_cast<uint32_t>(rng.NextBounded(num_labels)));
  }
  return out;
}

std::vector<uint64_t> RandomWeights(const LabeledGraph& g, uint64_t max_weight,
                                    Rng& rng) {
  std::vector<uint64_t> w;
  w.reserve(g.num_edges());
  for (size_t i = 0; i < g.num_edges(); ++i) w.push_back(1 + rng.NextBounded(max_weight));
  return w;
}

}  // namespace dlcirc
