// Bridges labeled graphs to Datalog databases: each label l becomes facts of
// the binary EDB predicate the program uses for l, and each edge's
// provenance variable is recorded so circuit inputs can be mapped back to
// edges.
#ifndef DLCIRC_GRAPH_GRAPH_DB_H_
#define DLCIRC_GRAPH_GRAPH_DB_H_

#include <string>
#include <vector>

#include "src/datalog/ast.h"
#include "src/datalog/database.h"
#include "src/graph/labeled_graph.h"

namespace dlcirc {

struct GraphDatabase {
  Database db;
  /// edge index -> provenance variable id in db. Parallel duplicate edges
  /// (same src/dst/label) share one fact and thus one variable.
  std::vector<uint32_t> edge_vars;
};

/// Loads `graph` into a Database for `program`. `label_preds[l]` names the
/// EDB predicate (must exist in the program with arity 2) receiving label-l
/// edges. Vertices are interned as "v<i>" by default; `vertex_names` (when
/// non-null, one name per vertex) overrides that so external graphs keep
/// their own constant names in query output.
GraphDatabase GraphToDatabase(const Program& program, const LabeledGraph& graph,
                              const std::vector<std::string>& label_preds,
                              const std::vector<std::string>* vertex_names = nullptr);

/// Domain constant id of vertex v ("v<i>") in a database built by
/// GraphToDatabase with the default naming. Not usable when `vertex_names`
/// overrode the names — look the name up in db.domain() directly instead
/// (this CHECK-fails rather than returning a wrong id).
uint32_t VertexConst(const Database& db, uint32_t v);

}  // namespace dlcirc

#endif  // DLCIRC_GRAPH_GRAPH_DB_H_
