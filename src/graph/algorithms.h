// Classic graph baselines the constructions are validated against:
// reachability (Boolean semantics of TC), Bellman-Ford and Floyd-Warshall
// (tropical semantics), and Tarjan SCC (used for grammar/automaton
// finiteness analyses).
#ifndef DLCIRC_GRAPH_ALGORITHMS_H_
#define DLCIRC_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "src/graph/labeled_graph.h"

namespace dlcirc {

/// Vertices reachable from src via directed edges (labels ignored);
/// result[v] true iff reachable. src itself is reachable.
std::vector<bool> Reachable(const LabeledGraph& g, uint32_t src);

/// Single-source shortest path weights over (min,+) with edge weights
/// `weights[edge]`; unreachable = TropicalSemiring-style infinity (max u64).
/// Distance of src to itself is 0.
std::vector<uint64_t> BellmanFordDistances(const LabeledGraph& g,
                                           const std::vector<uint64_t>& weights,
                                           uint32_t src);

/// All-pairs shortest paths; result[u][v].
std::vector<std::vector<uint64_t>> FloydWarshallDistances(
    const LabeledGraph& g, const std::vector<uint64_t>& weights);

/// Strongly connected components (Tarjan, iterative): returns component id
/// per vertex; ids are in reverse topological order of the condensation.
std::vector<uint32_t> StronglyConnectedComponents(uint32_t num_vertices,
                                                  const std::vector<std::vector<uint32_t>>& adj);

}  // namespace dlcirc

#endif  // DLCIRC_GRAPH_ALGORITHMS_H_
