// Directed edge-labeled graphs — the inputs of context-free reachability
// (Definition 5.1) and of the TC program. Labels are dense ids; label 0 is
// the conventional single label for unlabeled problems (TC).
#ifndef DLCIRC_GRAPH_LABELED_GRAPH_H_
#define DLCIRC_GRAPH_LABELED_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace dlcirc {

struct LabeledEdge {
  uint32_t src;
  uint32_t dst;
  uint32_t label;
  bool operator==(const LabeledEdge& o) const {
    return src == o.src && dst == o.dst && label == o.label;
  }
};

class LabeledGraph {
 public:
  explicit LabeledGraph(uint32_t num_vertices, uint32_t num_labels = 1)
      : num_vertices_(num_vertices), num_labels_(num_labels) {}

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t num_labels() const { return num_labels_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<LabeledEdge>& edges() const { return edges_; }
  const LabeledEdge& edge(size_t i) const { return edges_[i]; }

  /// Appends an edge and returns its index.
  uint32_t AddEdge(uint32_t src, uint32_t dst, uint32_t label = 0) {
    DLCIRC_CHECK_LT(src, num_vertices_);
    DLCIRC_CHECK_LT(dst, num_vertices_);
    DLCIRC_CHECK_LT(label, num_labels_);
    edges_.push_back({src, dst, label});
    return static_cast<uint32_t>(edges_.size() - 1);
  }

  /// Adds `count` fresh vertices, returning the id of the first.
  uint32_t AddVertices(uint32_t count) {
    uint32_t first = num_vertices_;
    num_vertices_ += count;
    return first;
  }

  /// Out-edges indexed by source (built on demand, O(V+E)).
  std::vector<std::vector<uint32_t>> OutEdgeIndex() const {
    std::vector<std::vector<uint32_t>> out(num_vertices_);
    for (uint32_t i = 0; i < edges_.size(); ++i) out[edges_[i].src].push_back(i);
    return out;
  }
  /// In-edges indexed by destination.
  std::vector<std::vector<uint32_t>> InEdgeIndex() const {
    std::vector<std::vector<uint32_t>> in(num_vertices_);
    for (uint32_t i = 0; i < edges_.size(); ++i) in[edges_[i].dst].push_back(i);
    return in;
  }

 private:
  uint32_t num_vertices_;
  uint32_t num_labels_;
  std::vector<LabeledEdge> edges_;
};

}  // namespace dlcirc

#endif  // DLCIRC_GRAPH_LABELED_GRAPH_H_
