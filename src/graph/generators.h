// Workload graph generators: the paper's hard instances ((l,n)-layered
// graphs of Theorem 3.4), word paths used by the pumping reductions, and
// standard random/path/cycle families for sweeps.
#ifndef DLCIRC_GRAPH_GENERATORS_H_
#define DLCIRC_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "src/graph/labeled_graph.h"
#include "src/util/rng.h"

namespace dlcirc {

/// A graph with two distinguished vertices (the fact T(s,t) under study).
struct StGraph {
  LabeledGraph graph;
  uint32_t s = 0;
  uint32_t t = 0;
};

/// Simple path s = v0 -> v1 -> ... -> vn = t (n edges, single label).
StGraph PathGraph(uint32_t num_edges);

/// Path whose i-th edge carries word[i] (labels must be < num_labels).
StGraph WordPath(const std::vector<uint32_t>& word, uint32_t num_labels);

/// Directed cycle of n vertices plus an entry s -> c0 and exit c_k -> t;
/// exercises absorption (infinitely many walks, finitely many paths).
StGraph CycleWithTails(uint32_t cycle_len);

/// The (width, layers)-layered graph of Theorem 3.4: `layers` layers of
/// `width` vertices; edges only between consecutive layers, each present
/// with probability `density`; s below the first layer (edges to every
/// first-layer vertex), t above the last. All s-t paths have layers+1 edges.
StGraph LayeredGraph(uint32_t width, uint32_t layers, double density, Rng& rng);

/// G(n, m) random digraph (no self loops, deduplicated), labels uniform over
/// num_labels, with s = 0, t = n-1.
StGraph RandomGraph(uint32_t n, uint32_t m, uint32_t num_labels, Rng& rng);

/// RandomGraph plus a 0 -> 1 -> ... -> n-1 backbone path, guaranteeing that
/// t is reachable from s (used by benches whose outputs would otherwise
/// collapse to the constant 0 on disconnected samples).
StGraph RandomConnectedGraph(uint32_t n, uint32_t m, uint32_t num_labels, Rng& rng);

/// Random uniform edge weights in [1, max_weight] for tropical evaluation,
/// indexed by edge id.
std::vector<uint64_t> RandomWeights(const LabeledGraph& g, uint64_t max_weight,
                                    Rng& rng);

}  // namespace dlcirc

#endif  // DLCIRC_GRAPH_GENERATORS_H_
