#include "src/graph/graph_db.h"

#include "src/util/check.h"

namespace dlcirc {

GraphDatabase GraphToDatabase(const Program& program, const LabeledGraph& graph,
                              const std::vector<std::string>& label_preds,
                              const std::vector<std::string>* vertex_names) {
  DLCIRC_CHECK_GE(label_preds.size(), graph.num_labels());
  if (vertex_names != nullptr) {
    DLCIRC_CHECK_EQ(vertex_names->size(), graph.num_vertices());
  }
  std::vector<uint32_t> pred_ids;
  for (const std::string& name : label_preds) {
    uint32_t p = program.preds.Find(name);
    DLCIRC_CHECK_NE(p, Interner::kNotFound) << "program lacks predicate " << name;
    DLCIRC_CHECK_EQ(program.arities[p], 2u) << name << " must be binary";
    pred_ids.push_back(p);
  }
  GraphDatabase out{Database(program), {}};
  std::vector<uint32_t> vertex_const(graph.num_vertices());
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    vertex_const[v] = out.db.InternConst(
        vertex_names != nullptr ? (*vertex_names)[v] : "v" + std::to_string(v));
  }
  out.edge_vars.reserve(graph.num_edges());
  for (const LabeledEdge& e : graph.edges()) {
    out.edge_vars.push_back(out.db.AddFact(
        pred_ids[e.label], Tuple{vertex_const[e.src], vertex_const[e.dst]}));
  }
  return out;
}

uint32_t VertexConst(const Database& db, uint32_t v) {
  uint32_t c = db.domain().Find("v" + std::to_string(v));
  DLCIRC_CHECK_NE(c, Interner::kNotFound);
  return c;
}

}  // namespace dlcirc
