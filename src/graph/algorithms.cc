#include "src/graph/algorithms.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace dlcirc {

namespace {
constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
}

std::vector<bool> Reachable(const LabeledGraph& g, uint32_t src) {
  std::vector<bool> vis(g.num_vertices(), false);
  auto out = g.OutEdgeIndex();
  std::vector<uint32_t> stack = {src};
  vis[src] = true;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t ei : out[v]) {
      uint32_t w = g.edge(ei).dst;
      if (!vis[w]) {
        vis[w] = true;
        stack.push_back(w);
      }
    }
  }
  return vis;
}

std::vector<uint64_t> BellmanFordDistances(const LabeledGraph& g,
                                           const std::vector<uint64_t>& weights,
                                           uint32_t src) {
  DLCIRC_CHECK_EQ(weights.size(), g.num_edges());
  std::vector<uint64_t> dist(g.num_vertices(), kInf);
  dist[src] = 0;
  for (uint32_t round = 0; round + 1 < g.num_vertices(); ++round) {
    bool changed = false;
    for (size_t i = 0; i < g.num_edges(); ++i) {
      const LabeledEdge& e = g.edge(i);
      if (dist[e.src] == kInf) continue;
      uint64_t cand = dist[e.src] + weights[i];
      if (cand < dist[e.dst]) {
        dist[e.dst] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::vector<std::vector<uint64_t>> FloydWarshallDistances(
    const LabeledGraph& g, const std::vector<uint64_t>& weights) {
  DLCIRC_CHECK_EQ(weights.size(), g.num_edges());
  uint32_t n = g.num_vertices();
  std::vector<std::vector<uint64_t>> d(n, std::vector<uint64_t>(n, kInf));
  for (uint32_t v = 0; v < n; ++v) d[v][v] = 0;
  for (size_t i = 0; i < g.num_edges(); ++i) {
    const LabeledEdge& e = g.edge(i);
    d[e.src][e.dst] = std::min(d[e.src][e.dst], weights[i]);
  }
  for (uint32_t k = 0; k < n; ++k) {
    for (uint32_t i = 0; i < n; ++i) {
      if (d[i][k] == kInf) continue;
      for (uint32_t j = 0; j < n; ++j) {
        if (d[k][j] == kInf) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

std::vector<uint32_t> StronglyConnectedComponents(
    uint32_t num_vertices, const std::vector<std::vector<uint32_t>>& adj) {
  DLCIRC_CHECK_EQ(adj.size(), num_vertices);
  constexpr uint32_t kUnset = 0xffffffffu;
  std::vector<uint32_t> index(num_vertices, kUnset), low(num_vertices, 0),
      comp(num_vertices, kUnset);
  std::vector<bool> on_stack(num_vertices, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0, next_comp = 0;

  // Iterative Tarjan with an explicit DFS frame stack.
  struct Frame {
    uint32_t v;
    size_t edge;
  };
  for (uint32_t start = 0; start < num_vertices; ++start) {
    if (index[start] != kUnset) continue;
    std::vector<Frame> frames = {{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        uint32_t w = adj[f.v][f.edge++];
        if (index[w] == kUnset) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }
  return comp;
}

}  // namespace dlcirc
