#include "src/obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dlcirc {
namespace obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t LocalHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < BucketLayout::kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Never report past the true maximum (the top bucket's midpoint can).
      const uint64_t rep = BucketLayout::Representative(i);
      return rep > max_ ? max_ : rep;
    }
  }
  return max_;  // unreachable when count_ matches bucket totals
}

LocalHistogram Histogram::Snapshot() const {
  LocalHistogram out;
  // count is recomputed from the copied buckets (not count_) so quantile
  // ranks always agree with the bucket totals even mid-update.
  uint64_t count = 0;
  for (uint32_t i = 0; i < BucketLayout::kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    out.buckets_[i] = n;
    count += n;
  }
  out.count_ = count;
  out.sum_ = sum_.load(std::memory_order_relaxed);
  out.max_ = max_.load(std::memory_order_relaxed);
  return out;
}

Registry& Registry::Default() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

Registry::Entry& Registry::GetEntry(Kind kind, std::string_view name,
                                    std::string_view labels,
                                    std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(std::string(name), std::string(labels));
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.help = std::string(help);
    switch (kind) {
      case Kind::kCounter:
        entry.counter.reset(new Counter(&enabled_));
        break;
      case Kind::kGauge:
        entry.gauge.reset(new Gauge(&enabled_));
        break;
      case Kind::kHistogram:
        entry.histogram.reset(new Histogram(&enabled_));
        break;
    }
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second;
}

Counter& Registry::GetCounter(std::string_view name, std::string_view labels,
                              std::string_view help) {
  return *GetEntry(Kind::kCounter, name, labels, help).counter;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view labels,
                          std::string_view help) {
  return *GetEntry(Kind::kGauge, name, labels, help).gauge;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::string_view labels,
                                  std::string_view help) {
  return *GetEntry(Kind::kHistogram, name, labels, help).histogram;
}

namespace {

// `name{labels,extra}` or `name{labels}` or `name{extra}` or `name`.
void AppendSeries(std::ostringstream& out, const std::string& name,
                  const std::string& labels, std::string_view extra) {
  out << name;
  if (!labels.empty() || !extra.empty()) {
    out << '{' << labels;
    if (!labels.empty() && !extra.empty()) out << ',';
    out << extra << '}';
  }
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  const std::string* last_name_with_help = nullptr;
  for (const auto& kv : entries_) {
    const std::string& name = kv.first.first;
    const std::string& labels = kv.first.second;
    const Entry& e = kv.second;
    if (!e.help.empty() &&
        (last_name_with_help == nullptr || *last_name_with_help != name)) {
      out << "# HELP " << name << ' ' << e.help << '\n';
      const char* type = e.kind == Kind::kCounter
                             ? "counter"
                             : e.kind == Kind::kGauge ? "gauge" : "summary";
      out << "# TYPE " << name << ' ' << type << '\n';
      last_name_with_help = &name;
    }
    switch (e.kind) {
      case Kind::kCounter:
        AppendSeries(out, name, labels, "");
        out << ' ' << e.counter->Value() << '\n';
        break;
      case Kind::kGauge:
        AppendSeries(out, name, labels, "");
        out << ' ' << e.gauge->Value() << '\n';
        break;
      case Kind::kHistogram: {
        const LocalHistogram snap = e.histogram->Snapshot();
        static const struct {
          const char* label;
          double q;
        } kQuantiles[] = {{"quantile=\"0.5\"", 0.5},
                          {"quantile=\"0.9\"", 0.9},
                          {"quantile=\"0.99\"", 0.99}};
        for (const auto& qv : kQuantiles) {
          AppendSeries(out, name, labels, qv.label);
          out << ' ' << snap.Quantile(qv.q) << '\n';
        }
        AppendSeries(out, name + "_sum", labels, "");
        out << ' ' << snap.sum() << '\n';
        AppendSeries(out, name + "_count", labels, "");
        out << ' ' << snap.count() << '\n';
        AppendSeries(out, name + "_max", labels, "");
        out << ' ' << snap.max() << '\n';
        break;
      }
    }
  }
  return out.str();
}

void Registry::ResetValuesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : entries_) {
    Entry& e = kv.second;
    switch (e.kind) {
      case Kind::kCounter:
        for (internal::Shard& s : e.counter->shards_) {
          s.v.store(0, std::memory_order_relaxed);
        }
        break;
      case Kind::kGauge:
        for (internal::Shard& s : e.gauge->shards_) {
          s.v.store(0, std::memory_order_relaxed);
        }
        break;
      case Kind::kHistogram: {
        Histogram& h = *e.histogram;
        for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
        h.count_.store(0, std::memory_order_relaxed);
        h.sum_.store(0, std::memory_order_relaxed);
        h.max_.store(0, std::memory_order_relaxed);
        break;
      }
    }
  }
}

}  // namespace obs
}  // namespace dlcirc
