// Trace spans: named, timed phases exportable as Chrome trace_event JSON.
//
// Metrics (metrics.h) answer "how much / how fast on aggregate"; spans
// answer "where did *this* request's time go". A span is one complete event
// — (category, name, start, duration, thread) — recorded into a bounded
// in-memory buffer and dumped with WriteChromeTrace as the Chrome
// trace_event JSON array format, which loads directly in about:tracing or
// https://ui.perfetto.dev. `dlcirc serve --trace-out FILE` and
// `dlcirc run --trace-out FILE` are the front doors.
//
// Same cost discipline as metrics: the recorder starts disabled, and a
// disabled recorder costs one relaxed load per would-be span (TraceSpan
// reads the clock only when enabled at construction). Recording takes a
// mutex — spans mark request/compile phases (microseconds to seconds), not
// per-gate work, so the lock is uncontended in practice and keeps the
// buffer trivially correct under TSan. The buffer is bounded (kMaxEvents);
// once full, further spans count into dropped() instead of growing memory.
#ifndef DLCIRC_OBS_TRACE_H_
#define DLCIRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"  // NowNs, ThreadIndex

namespace dlcirc {
namespace obs {

/// Bounded buffer of complete spans, exportable as Chrome trace JSON.
class TraceRecorder {
 public:
  /// Buffer cap; ~1M spans * ~100 bytes keeps worst-case memory near 100MB,
  /// far beyond any profiling session that a human will actually open in a
  /// trace viewer.
  static constexpr size_t kMaxEvents = 1u << 20;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder all dlcirc subsystems record into.
  static TraceRecorder& Default();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Records one complete span. `category` and `name` should be string
  /// literals or otherwise short ("serve", "batch_eval"); `args_json`, if
  /// non-empty, must be a valid JSON object body rendered by the caller
  /// (e.g. `"batch":12`) and is emitted verbatim into the event's "args".
  void Record(std::string_view category, std::string_view name,
              uint64_t start_ns, uint64_t dur_ns, std::string args_json = "");

  size_t size() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  /// Writes the JSON Object Format: {"traceEvents":[...complete events...],
  /// "displayTimeUnit":"ms"}. Timestamps are microseconds relative to the
  /// recorder's first span. Loads in about:tracing / Perfetto.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  struct Event {
    std::string category;
    std::string name;
    uint64_t start_ns;
    uint64_t dur_ns;
    uint32_t thread;
    std::string args_json;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span: stamps the clock at construction (only if the recorder is
/// enabled there — the decision is latched, so a span never half-records
/// across an enable flip) and records at destruction or End().
class TraceSpan {
 public:
  TraceSpan(TraceRecorder& rec, std::string_view category,
            std::string_view name)
      : rec_(rec.enabled() ? &rec : nullptr),
        category_(category),
        name_(name),
        start_ns_(rec_ ? NowNs() : 0) {}
  TraceSpan(std::string_view category, std::string_view name)
      : TraceSpan(TraceRecorder::Default(), category, name) {}
  ~TraceSpan() { End(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an args object body (e.g. `"batch":12`) to the eventual event.
  void set_args_json(std::string args_json) {
    if (rec_) args_json_ = std::move(args_json);
  }

  /// Records now; the destructor then does nothing. Idempotent.
  void End() {
    if (rec_ == nullptr) return;
    rec_->Record(category_, name_, start_ns_, NowNs() - start_ns_,
                 std::move(args_json_));
    rec_ = nullptr;
  }

 private:
  TraceRecorder* rec_;
  std::string_view category_;
  std::string_view name_;
  uint64_t start_ns_;
  std::string args_json_;
};

}  // namespace obs
}  // namespace dlcirc

#endif  // DLCIRC_OBS_TRACE_H_
