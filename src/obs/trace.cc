#include "src/obs/trace.h"

namespace dlcirc {
namespace obs {

namespace {

// Minimal JSON string escaping for event names/categories. obs is
// dependency-free by design (serve depends on obs, not the reverse), so it
// cannot borrow serve::JsonEscape; span names are short ASCII literals and
// this covers the full control range regardless.
void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* r = new TraceRecorder();  // leaked: outlives threads
  return *r;
}

void TraceRecorder::Record(std::string_view category, std::string_view name,
                           uint64_t start_ns, uint64_t dur_ns,
                           std::string args_json) {
  if (!enabled()) return;
  const uint32_t thread = ThreadIndex();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{std::string(category), std::string(name), start_ns,
                          dur_ns, thread, std::move(args_json)});
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Rebase timestamps to the earliest span so the viewer opens at t=0
  // instead of hours into a steady-clock epoch.
  uint64_t origin_ns = 0;
  bool first = true;
  for (const Event& e : events_) {
    if (first || e.start_ns < origin_ns) origin_ns = e.start_ns;
    first = false;
  }
  out << "{\"traceEvents\":[";
  std::string buf;
  bool need_comma = false;
  for (const Event& e : events_) {
    buf.clear();
    if (need_comma) buf += ',';
    need_comma = true;
    buf += "{\"name\":\"";
    AppendJsonEscaped(buf, e.name);
    buf += "\",\"cat\":\"";
    AppendJsonEscaped(buf, e.category);
    buf += "\",\"ph\":\"X\",\"ts\":";
    // Microseconds with sub-microsecond precision kept as a decimal.
    const uint64_t rel = e.start_ns - origin_ns;
    buf += std::to_string(rel / 1000);
    buf += '.';
    buf += static_cast<char>('0' + (rel / 100) % 10);
    buf += static_cast<char>('0' + (rel / 10) % 10);
    buf += static_cast<char>('0' + rel % 10);
    buf += ",\"dur\":";
    buf += std::to_string(e.dur_ns / 1000);
    buf += '.';
    buf += static_cast<char>('0' + (e.dur_ns / 100) % 10);
    buf += static_cast<char>('0' + (e.dur_ns / 10) % 10);
    buf += static_cast<char>('0' + e.dur_ns % 10);
    buf += ",\"pid\":1,\"tid\":";
    buf += std::to_string(e.thread);
    if (!e.args_json.empty()) {
      buf += ",\"args\":{";
      buf += e.args_json;
      buf += '}';
    }
    buf += '}';
    out << buf;
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace obs
}  // namespace dlcirc
