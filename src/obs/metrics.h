// Observability metrics: named counters, gauges, and latency histograms.
//
// The serving stack (src/serve), the pipeline (src/pipeline), and the eval
// engine (src/eval) all report through one process-wide Registry. The design
// constraints, in order:
//
//   1. Near-zero cost while disabled. Every Inc/Add/Record starts with one
//      relaxed atomic load of the registry's enable flag and branches away;
//      no clock is read, no cache line is written. The registry starts
//      disabled, so a library user who never opts in pays a predictable,
//      branch-predicted test per instrumentation point and nothing else
//      (measured in EXPERIMENTS.md E16).
//   2. Lock-free on the hot path while enabled. Counters and gauges shard
//      across cache-line-padded atomic slots indexed by a per-thread id, so
//      concurrent writers on different threads touch different lines;
//      histograms use relaxed atomic bucket adds (bucket contention is
//      spread by the value distribution itself). Reads (Value, Snapshot,
//      RenderPrometheus) sum over shards/buckets and may observe a torn
//      *set* of concurrent updates — each individual update is atomic and
//      none is lost, which is the usual monitoring contract.
//   3. Quantiles without samples. Histograms are log-bucketed (8 sub-buckets
//      per power of two): values 0..15 are exact, larger values land in a
//      bucket whose width is 1/8 of its magnitude, so any nearest-rank
//      quantile extracted from the buckets is within ~6.25% of the exact
//      sample quantile (the bucket-midpoint error bound; tests/obs_test.cc
//      asserts it on randomized distributions). Bucket arrays are a few KB,
//      mergeable across threads and processes, and never grow.
//
// Metric identity is (name, labels): `GetHistogram("dlcirc_serve_batch_size",
// "channel=\"tropical/grounded\"")`. Get* registers on first use and returns
// a stable reference; hot paths resolve once and keep the reference.
// RenderPrometheus emits the text exposition format (counters and gauges as
// themselves, histograms as summaries with p50/p90/p99 quantile lines).
//
// No dependencies outside src/util; src/eval, src/pipeline, and src/serve
// depend on this module, never the reverse.
#ifndef DLCIRC_OBS_METRICS_H_
#define DLCIRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dlcirc {
namespace obs {

/// Monotonic wall time in nanoseconds (steady clock; process-relative
/// origin). The one clock every obs timestamp and duration comes from.
uint64_t NowNs();

/// Dense small id for the calling thread (0, 1, 2, ... in first-call order).
/// Shards counters and labels trace events; stable for the thread's life.
uint32_t ThreadIndex();

/// Counter/gauge shard count. Power of two; threads map onto shards by
/// ThreadIndex() & (kShards - 1), so up to kShards writers never share a
/// cache line.
inline constexpr size_t kShards = 16;

namespace internal {
struct alignas(64) Shard {
  std::atomic<uint64_t> v{0};
};
}  // namespace internal

/// Monotonically increasing event count. Inc is lock-free and wait-free.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[ThreadIndex() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const internal::Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::array<internal::Shard, kShards> shards_;
};

/// Signed up/down value (queue depth, live lanes). Add is lock-free; Value
/// is the sum of per-shard deltas, so transient negatives never occur as
/// long as every Add(+d) precedes its matching Add(-d) in real time.
class Gauge {
 public:
  void Add(int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[ThreadIndex() & (kShards - 1)].v.fetch_add(
        static_cast<uint64_t>(delta), std::memory_order_relaxed);
  }
  int64_t Value() const {
    uint64_t total = 0;
    for (const internal::Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return static_cast<int64_t>(total);
  }

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::array<internal::Shard, kShards> shards_;
};

/// The log-bucket layout shared by Histogram (atomic) and LocalHistogram
/// (plain). Values 0..2*kSubBuckets-1 get one exact bucket each; beyond
/// that, each power-of-two octave splits into kSubBuckets equal buckets, so
/// bucket width never exceeds 1/kSubBuckets of the bucket's lower bound.
struct BucketLayout {
  static constexpr uint32_t kSubBucketBits = 3;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;  // 8
  /// Exact region: values < 2*kSubBuckets map to themselves.
  static constexpr uint32_t kExact = 2 * kSubBuckets;  // 16
  /// Octaves above the exact region for 64-bit values: bit widths
  /// kSubBucketBits+2 .. 64, one octave each.
  static constexpr uint32_t kNumBuckets =
      kExact + (64 - (kSubBucketBits + 1)) * kSubBuckets;  // 496

  static uint32_t Index(uint64_t v) {
    if (v < kExact) return static_cast<uint32_t>(v);
    // Highest kSubBucketBits+1 significant bits pick (octave, sub-bucket).
    const uint32_t bits = 64 - static_cast<uint32_t>(__builtin_clzll(v));
    const uint32_t shift = bits - (kSubBucketBits + 1);
    const uint32_t top = static_cast<uint32_t>(v >> shift);  // in [8, 16)
    return kExact + (bits - (kSubBucketBits + 2)) * kSubBuckets +
           (top - kSubBuckets);
  }

  /// Inclusive lower bound of bucket i.
  static uint64_t LowerBound(uint32_t i) {
    if (i < kExact) return i;
    const uint32_t k = i - kExact;
    const uint32_t octave = k / kSubBuckets;  // 0 = values [16, 32)
    const uint32_t sub = k % kSubBuckets;
    return static_cast<uint64_t>(kSubBuckets + sub) << (octave + 1);
  }

  /// Representative value reported for bucket i: the exact value in the
  /// exact region, the bucket midpoint above it (error <= width/2, i.e.
  /// <= 1/(2*kSubBuckets) of the true value).
  static uint64_t Representative(uint32_t i) {
    if (i < kExact) return i;
    const uint32_t octave = (i - kExact) / kSubBuckets;
    const uint64_t width = static_cast<uint64_t>(1) << (octave + 1);
    return LowerBound(i) + width / 2;
  }
};

/// Plain (single-threaded) histogram over the shared bucket layout: the
/// merge/quantile arithmetic, used directly by bench binaries and as the
/// read-side snapshot of the atomic Histogram. Copyable.
class LocalHistogram {
 public:
  void Record(uint64_t value) {
    ++buckets_[BucketLayout::Index(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }
  void Merge(const LocalHistogram& other) {
    for (uint32_t i = 0; i < BucketLayout::kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Nearest-rank quantile: the representative of the bucket holding the
  /// ceil(q * count)-th smallest sample (rank clamped to [1, count]); 0 when
  /// empty. With q = 0.5 and two samples this reports the *first* — the
  /// standard nearest-rank convention, exact for every sample the bucket
  /// layout stores exactly (values < 16) and within the layout's relative
  /// error bound above it.
  uint64_t Quantile(double q) const;

 private:
  friend class Histogram;  // Snapshot() fills the arrays directly
  std::array<uint64_t, BucketLayout::kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// Thread-safe histogram: relaxed atomic bucket adds, snapshot reads.
/// Typical unit: nanoseconds (latencies) or plain counts (batch widths).
class Histogram {
 public:
  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

  void Record(uint64_t value) {
    if (!enabled()) return;
    buckets_[BucketLayout::Index(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  /// Records NowNs() - start_ns when start_ns is a real timestamp; the 0
  /// sentinel means "the enable check already failed when the clock would
  /// have been read" and records nothing. Pairs with StartTimeNs().
  void RecordSince(uint64_t start_ns) {
    if (start_ns != 0) Record(NowNs() - start_ns);
  }
  /// NowNs() when this histogram is enabled, else the 0 sentinel — the
  /// pattern that keeps clock reads off the disabled path.
  uint64_t StartTimeNs() const { return enabled() ? NowNs() : 0; }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Coherent-enough copy for quantile math (see file comment on torn sets).
  LocalHistogram Snapshot() const;

 private:
  friend class Registry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::array<std::atomic<uint64_t>, BucketLayout::kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// RAII latency timer: reads the clock only when `h` is enabled at
/// construction, records the elapsed ns at destruction (or at Stop(), for
/// timing a prefix of the scope, e.g. a lock acquisition).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(&h), start_(h.StartTimeNs()) {}
  ~ScopedTimer() { Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now; the destructor then does nothing. Idempotent.
  void Stop() {
    h_->RecordSince(start_);
    start_ = 0;
  }

 private:
  Histogram* h_;
  uint64_t start_;
};

/// Process-wide named-metric registry. Get* registers (name, labels) on
/// first use under a mutex and returns a stable reference — resolve once,
/// then the metric itself is lock-free. Disabled at construction; flipping
/// set_enabled(true) activates every metric retroactively (they share the
/// registry's flag).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry every dlcirc subsystem reports to.
  static Registry& Default();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// `labels` is the rendered Prometheus label body without braces, e.g.
  /// `channel="tropical/grounded"`, or empty. `help` is kept from the first
  /// registration of `name`.
  Counter& GetCounter(std::string_view name, std::string_view labels = "",
                      std::string_view help = "");
  Gauge& GetGauge(std::string_view name, std::string_view labels = "",
                  std::string_view help = "");
  Histogram& GetHistogram(std::string_view name, std::string_view labels = "",
                          std::string_view help = "");

  /// Prometheus text exposition: counters/gauges verbatim, histograms as
  /// summaries (quantile="0.5|0.9|0.99" lines plus _sum/_count/_max).
  /// Metrics sort by (name, labels); empty metrics still render (a counter
  /// at 0 is information).
  std::string RenderPrometheus() const;

  /// Zeroes every registered metric (counts, buckets, gauges). For tests
  /// and benches that need a clean slate without a process restart;
  /// concurrent writers may land increments during the sweep.
  void ResetValuesForTest();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(Kind kind, std::string_view name, std::string_view labels,
                  std::string_view help);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards registration and iteration, not updates
  /// (name, labels) -> metric; std::map for stable references and sorted
  /// exposition output.
  std::map<std::pair<std::string, std::string>, Entry> entries_;
};

}  // namespace obs
}  // namespace dlcirc

#endif  // DLCIRC_OBS_METRICS_H_
