// Semiring CFL-reachability (Definition 5.1) via Knuth's lightest-derivation
// generalization of Melski-Reps — the direct-evaluation baseline the circuit
// constructions are compared against.
//
// Requirements on the semiring S (checked statically where possible):
//   * absorptive: guarantees the "superiority" property a (x) b <= a needed
//     for Knuth's greedy settling (a (+) a(x)b = a(1 (+) b) = a), and
//   * selective: a (+) b is always one of {a, b} (min/max-like), so the
//     natural order is total and a priority queue applies. Boolean,
//     Tropical, Viterbi and Fuzzy are selective; Sorp(X) is NOT.
//
// Each item (A, u, v) — nonterminal A derives some path u -> v — is settled
// exactly once, at its final fixpoint value.
#ifndef DLCIRC_CFLR_CFLR_H_
#define DLCIRC_CFLR_CFLR_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/graph/labeled_graph.h"
#include "src/lang/cfg.h"
#include "src/semiring/semiring.h"
#include "src/util/check.h"

namespace dlcirc {

/// Packs an item key; nonterminal < 2^16, vertices < 2^24.
inline uint64_t CflrKey(uint32_t nt, uint32_t u, uint32_t v) {
  DLCIRC_CHECK_LT(nt, 1u << 16);
  DLCIRC_CHECK_LT(u, 1u << 24);
  DLCIRC_CHECK_LT(v, 1u << 24);
  return (static_cast<uint64_t>(nt) << 48) | (static_cast<uint64_t>(u) << 24) | v;
}

/// Solves CFL-reachability over S. `cnf` must be in CNF (Cfg::ToCnf());
/// `edge_values[i]` is the value of edge i. Returns the fixpoint value of
/// every derivable item (A, u, v), keyed by CflrKey.
template <Semiring S>
std::unordered_map<uint64_t, typename S::Value> SolveCflReachability(
    const Cfg& cnf, const LabeledGraph& graph,
    const std::vector<typename S::Value>& edge_values) {
  static_assert(S::kIsAbsorptive, "Knuth's algorithm requires absorption");
  DLCIRC_CHECK_EQ(edge_values.size(), graph.num_edges());
  using V = typename S::Value;

  struct Item {
    V value;
    uint64_t key;
  };
  struct Cmp {
    // Max-heap under domination: a sorts after b when b dominates a.
    bool operator()(const Item& a, const Item& b) const {
      return S::Eq(S::Plus(b.value, a.value), b.value) &&
             !S::Eq(a.value, b.value);
    }
  };
  std::priority_queue<Item, std::vector<Item>, Cmp> queue;

  // Grammar indexes: binary productions by left / right rhs nonterminal.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> by_left(
      cnf.num_nonterminals());  // A: list of (B, C) with B -> A C
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> by_right(
      cnf.num_nonterminals());  // A: list of (B, C) with B -> C A
  for (const Production& p : cnf.productions()) {
    if (p.rhs.size() == 2) {
      DLCIRC_CHECK(!p.rhs[0].is_terminal && !p.rhs[1].is_terminal);
      by_left[p.rhs[0].id].push_back({p.lhs, p.rhs[1].id});
      by_right[p.rhs[1].id].push_back({p.lhs, p.rhs[0].id});
    }
  }

  // Seed: A -> a over label-a edges.
  for (const Production& p : cnf.productions()) {
    if (p.rhs.size() != 1) continue;
    DLCIRC_CHECK(p.rhs[0].is_terminal);
    for (uint32_t ei = 0; ei < graph.num_edges(); ++ei) {
      const LabeledEdge& e = graph.edge(ei);
      if (e.label != p.rhs[0].id) continue;
      if (S::Eq(edge_values[ei], S::Zero())) continue;
      queue.push({edge_values[ei], CflrKey(p.lhs, e.src, e.dst)});
    }
  }

  std::unordered_map<uint64_t, V> settled;
  // Settled items indexed for join partners: (nt, src) and (nt, dst).
  std::unordered_map<uint64_t, std::vector<std::pair<uint32_t, V>>> out_of, into;
  auto vertex_key = [](uint32_t nt, uint32_t v) {
    return (static_cast<uint64_t>(nt) << 24) | v;
  };

  while (!queue.empty()) {
    Item item = queue.top();
    queue.pop();
    if (settled.count(item.key)) continue;  // already settled at a value
    settled.emplace(item.key, item.value);
    uint32_t nt = static_cast<uint32_t>(item.key >> 48);
    uint32_t u = static_cast<uint32_t>((item.key >> 24) & 0xffffffu);
    uint32_t v = static_cast<uint32_t>(item.key & 0xffffffu);
    out_of[vertex_key(nt, u)].push_back({v, item.value});
    into[vertex_key(nt, v)].push_back({u, item.value});
    // B -> nt C : combine with settled (C, v, w).
    for (const auto& [b_nt, c_nt] : by_left[nt]) {
      auto it = out_of.find(vertex_key(c_nt, v));
      if (it == out_of.end()) continue;
      for (const auto& [w, c_val] : it->second) {
        V nv = S::Times(item.value, c_val);
        uint64_t nk = CflrKey(b_nt, u, w);
        if (!settled.count(nk)) queue.push({nv, nk});
      }
    }
    // B -> C nt : combine with settled (C, w, u).
    for (const auto& [b_nt, c_nt] : by_right[nt]) {
      auto it = into.find(vertex_key(c_nt, u));
      if (it == into.end()) continue;
      for (const auto& [w, c_val] : it->second) {
        V nv = S::Times(c_val, item.value);
        uint64_t nk = CflrKey(b_nt, w, v);
        if (!settled.count(nk)) queue.push({nv, nk});
      }
    }
  }
  return settled;
}

}  // namespace dlcirc

#endif  // DLCIRC_CFLR_CFLR_H_
