// Formulas over semirings (paper Section 2.5): circuits where every gate has
// fan-out one, i.e. expression trees. Formulas are the target of the paper's
// size dichotomies; Proposition 3.3 (circuit -> formula by expansion) and the
// Theorem 3.2 analogue (Spira depth reduction, see spira.h) operate on them.
#ifndef DLCIRC_CIRCUIT_FORMULA_H_
#define DLCIRC_CIRCUIT_FORMULA_H_

#include <cstdint>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/circuit.h"
#include "src/semiring/semiring.h"
#include "src/util/check.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace dlcirc {

/// An expression tree stored in an arena (children strictly before parents;
/// every node is the child of at most one other node).
class Formula {
 public:
  struct Node {
    GateKind kind;
    uint32_t a = 0;  ///< var id for kInput; left child otherwise
    uint32_t b = 0;  ///< right child for kPlus/kTimes
  };

  Formula() = default;
  Formula(std::vector<Node> nodes, uint32_t root, uint32_t num_vars);

  const std::vector<Node>& nodes() const { return nodes_; }
  uint32_t root() const { return root_; }
  uint32_t num_vars() const { return num_vars_; }

  /// Number of nodes in the tree rooted at root() (leaves included).
  uint64_t Size() const;
  /// Longest root-to-leaf path, in edges.
  uint32_t Depth() const;
  /// Leaves (inputs + constants) in the tree.
  uint64_t NumLeaves() const;

  /// Per-node subtree sizes (index-aligned with nodes(); nodes outside the
  /// root's tree still get their own subtree size).
  std::vector<uint64_t> SubtreeSizes() const;

  /// Evaluates the formula over S under an input-variable assignment.
  template <Semiring S>
  typename S::Value Evaluate(const std::vector<typename S::Value>& assignment) const {
    std::vector<typename S::Value> vals(nodes_.size(), S::Zero());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      switch (n.kind) {
        case GateKind::kZero:
          vals[i] = S::Zero();
          break;
        case GateKind::kOne:
          vals[i] = S::One();
          break;
        case GateKind::kInput:
          DLCIRC_CHECK_LT(n.a, assignment.size());
          vals[i] = assignment[n.a];
          break;
        case GateKind::kPlus:
          vals[i] = S::Plus(vals[n.a], vals[n.b]);
          break;
        case GateKind::kTimes:
          vals[i] = S::Times(vals[n.a], vals[n.b]);
          break;
      }
    }
    return vals[root_];
  }

  /// True iff children precede parents and no node is shared (tree shape).
  bool IsTree() const;

 private:
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  uint32_t num_vars_ = 0;
};

/// Incremental formula constructor with constant folding
/// (0+x=x, 0*x=0, 1*x=x); folding preserves equivalence over every semiring.
class FormulaBuilder {
 public:
  explicit FormulaBuilder(uint32_t num_vars) : num_vars_(num_vars) {}

  uint32_t Zero() { return Add(GateKind::kZero, 0, 0); }
  uint32_t One() { return Add(GateKind::kOne, 0, 0); }
  uint32_t Input(uint32_t var) {
    DLCIRC_CHECK_LT(var, num_vars_);
    return Add(GateKind::kInput, var, 0);
  }
  uint32_t Plus(uint32_t x, uint32_t y);
  uint32_t Times(uint32_t x, uint32_t y);

  GateKind KindOf(uint32_t id) const { return nodes_[id].kind; }
  size_t num_nodes() const { return nodes_.size(); }

  Formula Build(uint32_t root) const { return Formula(nodes_, root, num_vars_); }

 private:
  uint32_t Add(GateKind kind, uint32_t a, uint32_t b) {
    nodes_.push_back(Formula::Node{kind, a, b});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }
  uint32_t num_vars_;
  std::vector<Formula::Node> nodes_;
};

/// Proposition 3.3: expands output `output_idx` of a circuit into an explicit
/// formula by duplicating shared gates. Fails (with an error) if the expanded
/// tree would exceed `max_size` nodes — use Circuit::FormulaSizes() to
/// predict the size without materializing.
Result<Formula> CircuitToFormula(const Circuit& circuit, size_t output_idx,
                                 uint64_t max_size);

/// A formula is a circuit; converts losslessly (dedup may shrink it).
Circuit FormulaToCircuit(const Formula& formula, CircuitBuilder::Options options);

/// Random formula of roughly `target_size` nodes over `num_vars` variables
/// (used by property tests and the Spira bench). Leaves are variables with an
/// occasional constant; operators alternate randomly.
Formula RandomFormula(Rng& rng, uint32_t num_vars, uint32_t target_size);

}  // namespace dlcirc

#endif  // DLCIRC_CIRCUIT_FORMULA_H_
