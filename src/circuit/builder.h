// Hash-consing circuit builder.
//
// The builder deduplicates structurally identical gates (commutative
// children are normalized) and applies only semiring-valid local rewrites:
//   always:                0 + x = x,  0 * x = 0,  1 * x = x
//   if plus_idempotent:    x + x = x          (valid for idempotent +)
//   if absorptive:         1 + x = 1          (valid for absorptive semirings)
// The flags must match the class of semirings the circuit will be evaluated
// over; the paper's constructions (Sections 3-6) assume absorptive semirings,
// while the UCQ construction (Prop 3.7) is valid over any semiring and must
// be built with both flags off.
#ifndef DLCIRC_CIRCUIT_BUILDER_H_
#define DLCIRC_CIRCUIT_BUILDER_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/circuit/circuit.h"

namespace dlcirc {

class CircuitBuilder {
 public:
  struct Options {
    bool plus_idempotent = false;  ///< enable x + x = x
    bool absorptive = false;       ///< enable 1 + x = 1 (implies plus_idempotent)
    bool dedup = true;             ///< hash-cons structurally equal gates
  };

  /// Builder for circuits over arbitrary semirings (no idempotent rewrites).
  explicit CircuitBuilder(uint32_t num_vars) : CircuitBuilder(num_vars, Options{}) {}
  CircuitBuilder(uint32_t num_vars, Options options);

  /// Builder preset for absorptive semirings (the paper's setting).
  static CircuitBuilder ForAbsorptive(uint32_t num_vars);

  GateId Zero() const { return kZeroId; }
  GateId One() const { return kOneId; }
  /// The (deduplicated) input gate for variable `var` (< num_vars).
  GateId Input(uint32_t var);
  GateId Plus(GateId x, GateId y);
  GateId Times(GateId x, GateId y);

  /// Balanced (+)-fold: depth ceil(log2 n) above the deepest operand.
  /// Empty yields Zero().
  GateId PlusN(std::span<const GateId> xs);
  /// Balanced (x)-fold; empty yields One().
  GateId TimesN(std::span<const GateId> xs);

  uint32_t num_vars() const { return num_vars_; }
  /// Gates allocated so far (including ones later outside any output cone).
  size_t num_gates() const { return gates_.size(); }

  /// Finalizes into an immutable Circuit with the given outputs. The builder
  /// may keep being used afterwards (gates are copied).
  Circuit Build(std::vector<GateId> outputs) const;

 private:
  static constexpr GateId kZeroId = 0;
  static constexpr GateId kOneId = 1;

  GateId Emit(GateKind kind, uint32_t a, uint32_t b);

  uint32_t num_vars_;
  Options options_;
  std::vector<Gate> gates_;
  std::unordered_map<uint64_t, GateId> dedup_map_;
  std::vector<GateId> input_gate_;  // var -> gate id (or kNoGate)
};

/// How to rewire one input variable when transplanting a circuit.
struct InputSubstitution {
  enum class Kind { kVar, kOne, kZero };
  Kind kind = Kind::kZero;
  uint32_t var = 0;  ///< target variable id when kind == kVar

  static InputSubstitution Var(uint32_t v) {
    return {Kind::kVar, v};
  }
  static InputSubstitution One() { return {Kind::kOne, 0}; }
  static InputSubstitution Zero() { return {Kind::kZero, 0}; }
};

/// Rebuilds `circuit` with every input variable v replaced per subs[v]
/// (subs.size() must equal circuit.num_vars()). Used by the circuit-level
/// reductions of Theorems 5.9/5.11/6.8, where hard-instance inputs are mapped
/// to original variables or to the constant 1. Simplifications may shrink the
/// result; they never increase size or depth.
Circuit SubstituteInputs(const Circuit& circuit,
                         const std::vector<InputSubstitution>& subs,
                         uint32_t new_num_vars, CircuitBuilder::Options options);

/// Rebuilds `circuit` with a single output: the balanced (+)-sum of all its
/// outputs (used e.g. to sum an RPQ circuit over DFA accept states).
Circuit CombineOutputsWithPlus(const Circuit& circuit,
                               CircuitBuilder::Options options);

}  // namespace dlcirc

#endif  // DLCIRC_CIRCUIT_BUILDER_H_
