#include "src/circuit/spira.h"

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/check.h"

namespace dlcirc {

namespace {

constexpr uint64_t kBaseSize = 9;  // below this, copy verbatim
constexpr uint32_t kNoTarget = 0xffffffffu;

// Copies the subtree of `src` rooted at `node` into `out`, replacing the
// subtree rooted at `target` (if encountered) by the constant `target_kind`.
// Builder constant folding shrinks the copy.
uint32_t CopySubtree(const Formula& src, uint32_t node, uint32_t target,
                     GateKind target_kind, FormulaBuilder& out) {
  if (node == target) {
    return target_kind == GateKind::kOne ? out.One() : out.Zero();
  }
  const Formula::Node& n = src.nodes()[node];
  switch (n.kind) {
    case GateKind::kZero:
      return out.Zero();
    case GateKind::kOne:
      return out.One();
    case GateKind::kInput:
      return out.Input(n.a);
    case GateKind::kPlus:
      return out.Plus(CopySubtree(src, n.a, target, target_kind, out),
                      CopySubtree(src, n.b, target, target_kind, out));
    case GateKind::kTimes:
      return out.Times(CopySubtree(src, n.a, target, target_kind, out),
                       CopySubtree(src, n.b, target, target_kind, out));
  }
  DLCIRC_CHECK(false) << "unreachable";
  return 0;
}

// Extracts the subtree rooted at `node` as a standalone formula.
Formula ExtractSubtree(const Formula& src, uint32_t node) {
  FormulaBuilder fb(src.num_vars());
  uint32_t root = CopySubtree(src, node, kNoTarget, GateKind::kZero, fb);
  return fb.Build(root);
}

// Finds a separator: walk from the root towards the larger child until the
// subtree size first drops to <= (2s+2)/3. The found node G then satisfies
// |G| >= s/3 - 1 (it is the larger child of a node of size > (2s+2)/3), so
// both G and F[G:=c] (size <= s - |G| + 1 <= 2s/3 + 2) shrink geometrically.
uint32_t FindSeparator(const Formula& f, const std::vector<uint64_t>& sizes) {
  const uint64_t s = sizes[f.root()];
  const uint64_t threshold = (2 * s + 2) / 3;
  uint32_t cur = f.root();
  while (sizes[cur] > threshold) {
    const Formula::Node& n = f.nodes()[cur];
    DLCIRC_CHECK(n.kind == GateKind::kPlus || n.kind == GateKind::kTimes)
        << "non-leaf expected while size > threshold";
    cur = sizes[n.a] >= sizes[n.b] ? n.a : n.b;
  }
  return cur;
}

Formula Balance(const Formula& f);

// Appends a (already balanced) formula into `out`, returning its new root.
uint32_t Inline(const Formula& src, FormulaBuilder& out) {
  return CopySubtree(src, src.root(), kNoTarget, GateKind::kZero, out);
}

Formula Balance(const Formula& f) {
  std::vector<uint64_t> sizes = f.SubtreeSizes();
  const uint64_t s = sizes[f.root()];
  if (s <= kBaseSize) return f;

  const uint32_t g = FindSeparator(f, sizes);
  DLCIRC_CHECK_NE(g, f.root());

  // Three shrunken pieces: G, F[G:=1], F[G:=0].
  Formula fg = ExtractSubtree(f, g);
  FormulaBuilder b1(f.num_vars());
  Formula f1 = b1.Build(CopySubtree(f, f.root(), g, GateKind::kOne, b1));
  FormulaBuilder b0(f.num_vars());
  Formula f0 = b0.Build(CopySubtree(f, f.root(), g, GateKind::kZero, b0));

  Formula bg = Balance(fg);
  Formula bf1 = Balance(f1);
  Formula bf0 = Balance(f0);

  FormulaBuilder out(f.num_vars());
  uint32_t root =
      out.Plus(out.Times(Inline(bf1, out), Inline(bg, out)), Inline(bf0, out));
  return out.Build(root);
}

}  // namespace

SpiraResult BalanceFormulaAbsorptive(const Formula& f) {
  SpiraResult r{Balance(f), f.Size(), f.Depth(), 0, 0};
  r.balanced_size = r.formula.Size();
  r.balanced_depth = r.formula.Depth();
#ifndef NDEBUG
  // The Theorem 3.2 guarantee, checked on every debug-build call so a
  // regression in the split heuristic cannot ship depths the serving layer
  // advertises as logarithmic (spira_test covers release builds).
  DLCIRC_CHECK_LE(
      static_cast<double>(r.balanced_depth),
      kSpiraDepthSlope * std::log2(static_cast<double>(r.original_size) + 1) +
          kSpiraDepthOffset)
      << "Spira depth bound violated: balanced depth " << r.balanced_depth
      << " for original size " << r.original_size;
#endif
  return r;
}

}  // namespace dlcirc
