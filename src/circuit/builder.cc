#include "src/circuit/builder.h"

#include <algorithm>

namespace dlcirc {

namespace {
constexpr GateId kNoGate = 0xffffffffu;

uint64_t DedupKey(GateKind kind, uint32_t a, uint32_t b) {
  // kind in low bits; children packed above. Children are < 2^30 in practice;
  // use full 64-bit mix to be safe.
  uint64_t k = static_cast<uint64_t>(kind);
  uint64_t h = k;
  h = h * 0x9e3779b97f4a7c15ULL + a;
  h = h * 0x9e3779b97f4a7c15ULL + b;
  return h;
}
}  // namespace

CircuitBuilder::CircuitBuilder(uint32_t num_vars, Options options)
    : num_vars_(num_vars), options_(options), input_gate_(num_vars, kNoGate) {
  if (options_.absorptive) options_.plus_idempotent = true;
  gates_.push_back(Gate{GateKind::kZero, 0, 0});
  gates_.push_back(Gate{GateKind::kOne, 0, 0});
}

CircuitBuilder CircuitBuilder::ForAbsorptive(uint32_t num_vars) {
  Options o;
  o.absorptive = true;
  o.plus_idempotent = true;
  return CircuitBuilder(num_vars, o);
}

GateId CircuitBuilder::Input(uint32_t var) {
  DLCIRC_CHECK_LT(var, num_vars_);
  if (input_gate_[var] != kNoGate) return input_gate_[var];
  GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateKind::kInput, var, 0});
  input_gate_[var] = id;
  return id;
}

GateId CircuitBuilder::Emit(GateKind kind, uint32_t a, uint32_t b) {
  if (options_.dedup) {
    // Dedup map stores the exact triple; collisions are resolved by the map
    // key being the triple hash plus an equality check on the stored gate.
    uint64_t key = DedupKey(kind, a, b);
    auto it = dedup_map_.find(key);
    if (it != dedup_map_.end()) {
      const Gate& g = gates_[it->second];
      if (g.kind == kind && g.a == a && g.b == b) return it->second;
      // Hash collision with different structure: fall through and emit;
      // dedup becomes best-effort (extremely rare with 64-bit keys).
    }
    GateId id = static_cast<GateId>(gates_.size());
    gates_.push_back(Gate{kind, a, b});
    dedup_map_[key] = id;
    return id;
  }
  GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{kind, a, b});
  return id;
}

GateId CircuitBuilder::Plus(GateId x, GateId y) {
  DLCIRC_CHECK_LT(x, gates_.size());
  DLCIRC_CHECK_LT(y, gates_.size());
  if (x == kZeroId) return y;
  if (y == kZeroId) return x;
  if (options_.absorptive && (x == kOneId || y == kOneId)) return kOneId;
  if (options_.plus_idempotent && x == y) return x;
  if (x > y) std::swap(x, y);  // commutative normalization
  return Emit(GateKind::kPlus, x, y);
}

GateId CircuitBuilder::Times(GateId x, GateId y) {
  DLCIRC_CHECK_LT(x, gates_.size());
  DLCIRC_CHECK_LT(y, gates_.size());
  if (x == kZeroId || y == kZeroId) return kZeroId;
  if (x == kOneId) return y;
  if (y == kOneId) return x;
  if (x > y) std::swap(x, y);
  return Emit(GateKind::kTimes, x, y);
}

GateId CircuitBuilder::PlusN(std::span<const GateId> xs) {
  if (xs.empty()) return kZeroId;
  std::vector<GateId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<GateId> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) next.push_back(Plus(level[i], level[i + 1]));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

GateId CircuitBuilder::TimesN(std::span<const GateId> xs) {
  if (xs.empty()) return kOneId;
  std::vector<GateId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<GateId> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) next.push_back(Times(level[i], level[i + 1]));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Circuit CircuitBuilder::Build(std::vector<GateId> outputs) const {
  for (GateId o : outputs) DLCIRC_CHECK_LT(o, gates_.size());
  return Circuit(gates_, std::move(outputs), num_vars_);
}

Circuit SubstituteInputs(const Circuit& circuit,
                         const std::vector<InputSubstitution>& subs,
                         uint32_t new_num_vars, CircuitBuilder::Options options) {
  DLCIRC_CHECK_EQ(subs.size(), circuit.num_vars());
  CircuitBuilder b(new_num_vars, options);
  const auto& gates = circuit.gates();
  std::vector<GateId> map(gates.size());
  for (size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.kind) {
      case GateKind::kZero:
        map[i] = b.Zero();
        break;
      case GateKind::kOne:
        map[i] = b.One();
        break;
      case GateKind::kInput: {
        const InputSubstitution& s = subs[g.a];
        switch (s.kind) {
          case InputSubstitution::Kind::kVar:
            map[i] = b.Input(s.var);
            break;
          case InputSubstitution::Kind::kOne:
            map[i] = b.One();
            break;
          case InputSubstitution::Kind::kZero:
            map[i] = b.Zero();
            break;
        }
        break;
      }
      case GateKind::kPlus:
        map[i] = b.Plus(map[g.a], map[g.b]);
        break;
      case GateKind::kTimes:
        map[i] = b.Times(map[g.a], map[g.b]);
        break;
    }
  }
  std::vector<GateId> outputs;
  outputs.reserve(circuit.outputs().size());
  for (GateId o : circuit.outputs()) outputs.push_back(map[o]);
  return b.Build(std::move(outputs));
}

Circuit CombineOutputsWithPlus(const Circuit& circuit,
                               CircuitBuilder::Options options) {
  CircuitBuilder b(circuit.num_vars(), options);
  const auto& gates = circuit.gates();
  std::vector<GateId> map(gates.size());
  for (size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    switch (g.kind) {
      case GateKind::kZero:
        map[i] = b.Zero();
        break;
      case GateKind::kOne:
        map[i] = b.One();
        break;
      case GateKind::kInput:
        map[i] = b.Input(g.a);
        break;
      case GateKind::kPlus:
        map[i] = b.Plus(map[g.a], map[g.b]);
        break;
      case GateKind::kTimes:
        map[i] = b.Times(map[g.a], map[g.b]);
        break;
    }
  }
  std::vector<GateId> outs;
  outs.reserve(circuit.outputs().size());
  for (GateId o : circuit.outputs()) outs.push_back(map[o]);
  return b.Build({b.PlusN(outs)});
}

}  // namespace dlcirc
