// Spira/Brent depth reduction for semiring formulas — the executable analogue
// of Theorem 3.2 (Wegener) used by the paper to tie formula size to circuit
// depth.
//
// For a formula F and an internal subtree G (which occurs exactly once, F
// being a tree), distributivity gives F = A (x) G (+) B with B = F[G:=0] and
// A (+) B = F[G:=1]. Hence over any ABSORPTIVE semiring:
//
//   (F[G:=1] (x) G) (+) F[G:=0]
//     = (A (+) B) (x) G (+) B
//     = A (x) G (+) B (x) G (+) B
//     = A (x) G (+) B (x) (G (+) 1)     [distributivity]
//     = A (x) G (+) B                   [absorption: G (+) 1 = 1]
//     = F.
//
// Choosing G as a 1/3-2/3 separator and recursing yields an equivalent
// formula of depth O(log |F|), i.e. formulas of polynomial size always admit
// logarithmic depth — the upper-bound half of the paper's dichotomies.
#ifndef DLCIRC_CIRCUIT_SPIRA_H_
#define DLCIRC_CIRCUIT_SPIRA_H_

#include "src/circuit/formula.h"

namespace dlcirc {

/// Depth statistics returned alongside the balanced formula.
struct SpiraResult {
  Formula formula;
  uint64_t original_size = 0;
  uint32_t original_depth = 0;
  uint64_t balanced_size = 0;
  uint32_t balanced_depth = 0;
};

/// Restructures `f` into an equivalent formula (over every absorptive
/// semiring) of depth <= kSpiraDepthSlope * log2(size) + kSpiraDepthOffset.
SpiraResult BalanceFormulaAbsorptive(const Formula& f);

/// Proven bound constants for BalanceFormulaAbsorptive: the recursion
/// satisfies D(s) <= D(2s/3 + 2) + 2 with base D(s <= 9) <= 8.
inline constexpr double kSpiraDepthSlope = 4.0;
inline constexpr double kSpiraDepthOffset = 10.0;

}  // namespace dlcirc

#endif  // DLCIRC_CIRCUIT_SPIRA_H_
