// Circuit IR over semirings (paper Section 2.5).
//
// A circuit is a DAG whose leaves are EDB-fact variables or the constants
// 0/1 and whose internal gates are fan-in-2 (+)/(x) gates. Gates live in a
// flat arena, children strictly before parents, so every traversal is a
// single forward pass. A circuit may expose several output gates (e.g. all
// (s,t) pairs of transitive closure share one DAG).
#ifndef DLCIRC_CIRCUIT_CIRCUIT_H_
#define DLCIRC_CIRCUIT_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/semiring/semiring.h"
#include "src/util/bigcount.h"
#include "src/util/check.h"

namespace dlcirc {

/// Gate kinds; kZero/kOne/kInput have fan-in 0, kPlus/kTimes have fan-in 2.
enum class GateKind : uint8_t { kZero, kOne, kInput, kPlus, kTimes };

/// One gate. For kInput, `a` is the variable id; for kPlus/kTimes, `a`/`b`
/// are child gate ids (< this gate's id).
struct Gate {
  GateKind kind;
  uint32_t a = 0;
  uint32_t b = 0;
};

using GateId = uint32_t;

/// Immutable circuit produced by CircuitBuilder.
class Circuit {
 public:
  /// Structural measurements over the cone of the outputs (gates reachable
  /// from some output). Matches the paper's conventions: size counts all
  /// gates including leaves; depth is the edge-length of the longest
  /// leaf-to-output path (a bare input has depth 0).
  struct Stats {
    uint64_t size = 0;         ///< gates in the output cone (incl. leaves)
    uint64_t num_plus = 0;     ///< (+)-gates in the cone
    uint64_t num_times = 0;    ///< (x)-gates in the cone
    uint64_t num_inputs = 0;   ///< distinct input gates in the cone
    uint32_t depth = 0;        ///< longest input-to-output path (edges)
  };

  Circuit() = default;
  Circuit(std::vector<Gate> gates, std::vector<GateId> outputs, uint32_t num_vars);

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  /// Size of the input-variable space (valid var ids are [0, num_vars)).
  uint32_t num_vars() const { return num_vars_; }

  /// Stats are computed once at construction and cached, so Size()/Depth()
  /// and repeated ComputeStats() calls are free. A Circuit is immutable, so
  /// the cache can never go stale on a live object — CircuitBuilder::Build
  /// snapshots the arena, and later builder mutations only affect later
  /// Builds. The one way to observe a stale cache is a moved-from Circuit
  /// (its arena is gone but Stats, a plain struct, survives the move);
  /// every accessor CHECKs against that instead of serving stale numbers.
  const Stats& ComputeStats() const {
    DLCIRC_CHECK_LE(stats_.size, gates_.size())
        << "stale Stats: cached for a larger arena than this circuit holds "
           "(moved-from circuit?)";
    return stats_;
  }
  /// Gates in the output cone (Stats().size).
  uint64_t Size() const { return ComputeStats().size; }
  /// Longest input-to-output path length in edges (Stats().depth).
  uint32_t Depth() const { return ComputeStats().depth; }

  /// Evaluates all outputs under `assignment` (one value per variable id)
  /// over semiring S, bottom-up in one pass. Work is restricted to the
  /// output cone: gates outside it (including dead inputs, whose variable
  /// ids need not be covered by `assignment`) are skipped.
  template <Semiring S>
  std::vector<typename S::Value> Evaluate(
      const std::vector<typename S::Value>& assignment) const {
    const std::vector<bool>& cone = OutputCone();
    std::vector<typename S::Value> vals(gates_.size(), S::Zero());
    for (size_t i = 0; i < gates_.size(); ++i) {
      if (!cone[i]) continue;
      const Gate& g = gates_[i];
      switch (g.kind) {
        case GateKind::kZero:
          vals[i] = S::Zero();
          break;
        case GateKind::kOne:
          vals[i] = S::One();
          break;
        case GateKind::kInput:
          DLCIRC_CHECK_LT(g.a, assignment.size());
          vals[i] = assignment[g.a];
          break;
        case GateKind::kPlus:
          vals[i] = S::Plus(vals[g.a], vals[g.b]);
          break;
        case GateKind::kTimes:
          vals[i] = S::Times(vals[g.a], vals[g.b]);
          break;
      }
    }
    std::vector<typename S::Value> out;
    out.reserve(outputs_.size());
    for (GateId o : outputs_) out.push_back(vals[o]);
    return out;
  }

  /// Convenience: evaluates and returns only output `idx`.
  template <Semiring S>
  typename S::Value EvaluateOutput(const std::vector<typename S::Value>& assignment,
                                   size_t idx = 0) const {
    DLCIRC_CHECK_LT(idx, outputs_.size());
    return Evaluate<S>(assignment)[idx];
  }

  /// Size of the formula obtained by fully expanding shared gates into a
  /// tree (Proposition 3.3), per output; counts all tree nodes incl. leaves.
  std::vector<BigCount> FormulaSizes() const;

  /// True iff children precede parents, kinds/arities are consistent, and
  /// outputs and input var ids are in range.
  bool IsWellFormed() const;

  /// Graphviz rendering of the output cone (small circuits only).
  std::string ToDot() const;

  /// Mask of gates reachable from some output (indexed by gate id).
  /// Computed once at construction, like the stats.
  const std::vector<bool>& OutputCone() const { return cone_; }

 private:
  std::vector<bool> ComputeOutputCone() const;
  Stats ComputeStatsUncached() const;

  std::vector<Gate> gates_;
  std::vector<GateId> outputs_;
  uint32_t num_vars_ = 0;
  std::vector<bool> cone_;
  Stats stats_;
};

}  // namespace dlcirc

#endif  // DLCIRC_CIRCUIT_CIRCUIT_H_
