#include "src/circuit/circuit.h"

#include <algorithm>
#include <sstream>

namespace dlcirc {

Circuit::Circuit(std::vector<Gate> gates, std::vector<GateId> outputs,
                 uint32_t num_vars)
    : gates_(std::move(gates)), outputs_(std::move(outputs)), num_vars_(num_vars) {
  DLCIRC_CHECK(IsWellFormed()) << "malformed circuit";
  cone_ = ComputeOutputCone();
  stats_ = ComputeStatsUncached();
}

std::vector<bool> Circuit::ComputeOutputCone() const {
  std::vector<bool> in_cone(gates_.size(), false);
  for (GateId o : outputs_) in_cone[o] = true;
  for (size_t i = gates_.size(); i-- > 0;) {
    if (!in_cone[i]) continue;
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kPlus || g.kind == GateKind::kTimes) {
      in_cone[g.a] = true;
      in_cone[g.b] = true;
    }
  }
  return in_cone;
}

Circuit::Stats Circuit::ComputeStatsUncached() const {
  const std::vector<bool>& cone = OutputCone();
  std::vector<uint32_t> depth(gates_.size(), 0);
  Stats s;
  for (size_t i = 0; i < gates_.size(); ++i) {
    if (!cone[i]) continue;
    const Gate& g = gates_[i];
    ++s.size;
    switch (g.kind) {
      case GateKind::kZero:
      case GateKind::kOne:
        break;
      case GateKind::kInput:
        ++s.num_inputs;
        break;
      case GateKind::kPlus:
        ++s.num_plus;
        depth[i] = 1 + std::max(depth[g.a], depth[g.b]);
        break;
      case GateKind::kTimes:
        ++s.num_times;
        depth[i] = 1 + std::max(depth[g.a], depth[g.b]);
        break;
    }
  }
  for (GateId o : outputs_) s.depth = std::max(s.depth, depth[o]);
  return s;
}

std::vector<BigCount> Circuit::FormulaSizes() const {
  std::vector<BigCount> fs(gates_.size());
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind == GateKind::kPlus || g.kind == GateKind::kTimes) {
      fs[i] = BigCount(1) + fs[g.a] + fs[g.b];
    } else {
      fs[i] = BigCount(1);
    }
  }
  std::vector<BigCount> out;
  out.reserve(outputs_.size());
  for (GateId o : outputs_) out.push_back(fs[o]);
  return out;
}

bool Circuit::IsWellFormed() const {
  for (size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kZero:
      case GateKind::kOne:
        break;
      case GateKind::kInput:
        if (g.a >= num_vars_) return false;
        break;
      case GateKind::kPlus:
      case GateKind::kTimes:
        if (g.a >= i || g.b >= i) return false;
        break;
    }
  }
  for (GateId o : outputs_) {
    if (o >= gates_.size()) return false;
  }
  return true;
}

std::string Circuit::ToDot() const {
  const std::vector<bool>& cone = OutputCone();
  std::ostringstream ss;
  ss << "digraph circuit {\n  rankdir=BT;\n";
  for (size_t i = 0; i < gates_.size(); ++i) {
    if (!cone[i]) continue;
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kZero:
        ss << "  g" << i << " [label=\"0\", shape=box];\n";
        break;
      case GateKind::kOne:
        ss << "  g" << i << " [label=\"1\", shape=box];\n";
        break;
      case GateKind::kInput:
        ss << "  g" << i << " [label=\"x" << g.a << "\", shape=box];\n";
        break;
      case GateKind::kPlus:
        ss << "  g" << i << " [label=\"+\"];\n";
        ss << "  g" << g.a << " -> g" << i << ";\n  g" << g.b << " -> g" << i << ";\n";
        break;
      case GateKind::kTimes:
        ss << "  g" << i << " [label=\"*\"];\n";
        ss << "  g" << g.a << " -> g" << i << ";\n  g" << g.b << " -> g" << i << ";\n";
        break;
    }
  }
  for (size_t k = 0; k < outputs_.size(); ++k) {
    ss << "  out" << k << " [label=\"out" << k << "\", shape=plaintext];\n";
    ss << "  g" << outputs_[k] << " -> out" << k << ";\n";
  }
  ss << "}\n";
  return ss.str();
}

}  // namespace dlcirc
