#include "src/circuit/formula.h"

#include <algorithm>
#include <functional>

namespace dlcirc {

Formula::Formula(std::vector<Node> nodes, uint32_t root, uint32_t num_vars)
    : nodes_(std::move(nodes)), root_(root), num_vars_(num_vars) {
  DLCIRC_CHECK_LT(root_, nodes_.size());
  DLCIRC_CHECK(IsTree()) << "formula nodes must form a tree";
}

std::vector<uint64_t> Formula::SubtreeSizes() const {
  std::vector<uint64_t> sz(nodes_.size(), 1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == GateKind::kPlus || n.kind == GateKind::kTimes) {
      sz[i] = 1 + sz[n.a] + sz[n.b];
    }
  }
  return sz;
}

uint64_t Formula::Size() const { return SubtreeSizes()[root_]; }

uint32_t Formula::Depth() const {
  std::vector<uint32_t> d(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == GateKind::kPlus || n.kind == GateKind::kTimes) {
      d[i] = 1 + std::max(d[n.a], d[n.b]);
    }
  }
  return d[root_];
}

uint64_t Formula::NumLeaves() const {
  std::vector<uint64_t> l(nodes_.size(), 1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == GateKind::kPlus || n.kind == GateKind::kTimes) {
      l[i] = l[n.a] + l[n.b];
    }
  }
  return l[root_];
}

bool Formula::IsTree() const {
  std::vector<uint8_t> used(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == GateKind::kPlus || n.kind == GateKind::kTimes) {
      if (n.a >= i || n.b >= i) return false;
      if (n.a == n.b) return false;
      if (used[n.a]++ || used[n.b]++) return false;
    } else if (n.kind == GateKind::kInput && n.a >= num_vars_) {
      return false;
    }
  }
  return used[root_] == 0;
}

uint32_t FormulaBuilder::Plus(uint32_t x, uint32_t y) {
  DLCIRC_CHECK_LT(x, nodes_.size());
  DLCIRC_CHECK_LT(y, nodes_.size());
  if (nodes_[x].kind == GateKind::kZero) return y;
  if (nodes_[y].kind == GateKind::kZero) return x;
  return Add(GateKind::kPlus, x, y);
}

uint32_t FormulaBuilder::Times(uint32_t x, uint32_t y) {
  DLCIRC_CHECK_LT(x, nodes_.size());
  DLCIRC_CHECK_LT(y, nodes_.size());
  if (nodes_[x].kind == GateKind::kZero || nodes_[y].kind == GateKind::kZero) {
    // Reuse whichever operand is already the constant 0.
    return nodes_[x].kind == GateKind::kZero ? x : y;
  }
  if (nodes_[x].kind == GateKind::kOne) return y;
  if (nodes_[y].kind == GateKind::kOne) return x;
  return Add(GateKind::kTimes, x, y);
}

Result<Formula> CircuitToFormula(const Circuit& circuit, size_t output_idx,
                                 uint64_t max_size) {
  DLCIRC_CHECK_LT(output_idx, circuit.outputs().size());
  // Predict the expansion size first so we never materialize a monster.
  BigCount predicted = circuit.FormulaSizes()[output_idx];
  if (predicted.saturated() || predicted.exact() > max_size) {
    return Result<Formula>::Error("formula expansion would have " +
                                  predicted.ToString() + " nodes (cap " +
                                  std::to_string(max_size) + ")");
  }
  const auto& gates = circuit.gates();
  FormulaBuilder fb(circuit.num_vars());
  // Recursive expansion; shared gates are duplicated per visit (Prop 3.3).
  std::function<uint32_t(GateId)> expand = [&](GateId g) -> uint32_t {
    const Gate& gate = gates[g];
    switch (gate.kind) {
      case GateKind::kZero:
        return fb.Zero();
      case GateKind::kOne:
        return fb.One();
      case GateKind::kInput:
        return fb.Input(gate.a);
      case GateKind::kPlus:
        return fb.Plus(expand(gate.a), expand(gate.b));
      case GateKind::kTimes:
        return fb.Times(expand(gate.a), expand(gate.b));
    }
    DLCIRC_CHECK(false) << "unreachable";
    return 0;
  };
  uint32_t root = expand(circuit.outputs()[output_idx]);
  return fb.Build(root);
}

Circuit FormulaToCircuit(const Formula& formula, CircuitBuilder::Options options) {
  CircuitBuilder b(formula.num_vars(), options);
  const auto& nodes = formula.nodes();
  std::vector<GateId> map(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Formula::Node& n = nodes[i];
    switch (n.kind) {
      case GateKind::kZero:
        map[i] = b.Zero();
        break;
      case GateKind::kOne:
        map[i] = b.One();
        break;
      case GateKind::kInput:
        map[i] = b.Input(n.a);
        break;
      case GateKind::kPlus:
        map[i] = b.Plus(map[n.a], map[n.b]);
        break;
      case GateKind::kTimes:
        map[i] = b.Times(map[n.a], map[n.b]);
        break;
    }
  }
  return b.Build({map[formula.root()]});
}

namespace {
uint32_t RandomSubformula(Rng& rng, uint32_t num_vars, uint32_t budget,
                          FormulaBuilder& fb) {
  if (budget <= 1) {
    // 1-in-16 constant leaves keep folding paths exercised without collapsing
    // the whole formula.
    uint64_t roll = rng.NextBounded(16);
    if (roll == 0) return fb.One();
    return fb.Input(static_cast<uint32_t>(rng.NextBounded(num_vars)));
  }
  uint32_t left_budget = 1 + static_cast<uint32_t>(rng.NextBounded(budget - 1));
  uint32_t right_budget = budget - left_budget;
  if (right_budget == 0) right_budget = 1;
  uint32_t l = RandomSubformula(rng, num_vars, left_budget, fb);
  uint32_t r = RandomSubformula(rng, num_vars, right_budget, fb);
  return rng.NextBool(0.5) ? fb.Plus(l, r) : fb.Times(l, r);
}
}  // namespace

Formula RandomFormula(Rng& rng, uint32_t num_vars, uint32_t target_size) {
  DLCIRC_CHECK_GT(num_vars, 0u);
  FormulaBuilder fb(num_vars);
  uint32_t root = RandomSubformula(rng, num_vars, std::max(1u, target_size / 2), fb);
  return fb.Build(root);
}

}  // namespace dlcirc
