// Domain example: Dyck-1 (matched parentheses) reachability, the classic
// CFL-reachability abstraction of program analyses (call/return matching),
// run over semirings (Example 6.4).
//
// Shows: the chain-Datalog <-> CFG correspondence (Prop 5.2), the Knuth
// CFL-reachability solver, and the Ullman-Van Gelder O(log^2 m)-depth
// circuit (Theorem 6.2) agreeing on a bracket graph.
//
// Build & run:  ./build/examples/cfg_reachability [k]
#include <cstdlib>
#include <iostream>

#include "src/cflr/cflr.h"
#include "src/constructions/uvg_circuit.h"
#include "src/datalog/engine.h"
#include "src/datalog/parser.h"
#include "src/graph/generators.h"
#include "src/graph/graph_db.h"
#include "src/lang/chain_datalog.h"
#include "src/semiring/instances.h"

using namespace dlcirc;

int main(int argc, char** argv) {
  uint32_t k = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 6;
  Program dyck = ParseProgram(R"(
@target S.
S(X,Y) :- L(X,Z), R(Z,Y).
S(X,Y) :- L(X,W), S(W,Z), R(Z,Y).
S(X,Y) :- S(X,Z), S(Z,Y).
)").value();
  std::cout << "Dyck-1 chain program (Example 6.4):\n" << dyck.ToString() << "\n";
  Cfg cfg = ChainProgramToCfg(dyck).value();
  std::cout << "Corresponding CFG (Prop 5.2):\n" << cfg.ToString()
            << "finite language? " << (cfg.IsFiniteLanguage() ? "yes" : "no")
            << " -> the program is " << (cfg.IsFiniteLanguage() ? "bounded" : "unbounded")
            << " (Prop 5.5)\n\n";

  // Word path ( ( ... ( ) ... ) ) ( ) with k opens/closes plus a trailing ().
  std::vector<uint32_t> word;
  for (uint32_t i = 0; i < k; ++i) word.push_back(0);
  for (uint32_t i = 0; i < k; ++i) word.push_back(1);
  word.push_back(0);
  word.push_back(1);
  StGraph sg = WordPath(word, 2);
  std::cout << "Instance: path spelling (^" << k << " )^" << k << " ( ) — "
            << sg.graph.num_edges() << " edges\n";

  // Weights: cost of traversing each bracket.
  Rng rng(3);
  std::vector<uint64_t> weights = RandomWeights(sg.graph, 9, rng);

  // 1. Knuth CFL-reachability baseline.
  auto solved = SolveCflReachability<TropicalSemiring>(cfg.ToCnf(), sg.graph, weights);
  auto it = solved.find(CflrKey(cfg.ToCnf().start(), sg.s, sg.t));
  uint64_t knuth =
      it == solved.end() ? TropicalSemiring::kInf : it->second;
  std::cout << "Knuth CFL-reachability: best S-derivation weight s->t = "
            << knuth << "\n";

  // 2. Datalog engine.
  GraphDatabase gdb = GraphToDatabase(dyck, sg.graph, {"L", "R"});
  GroundedProgram g = Ground(dyck, gdb.db);
  std::vector<uint64_t> edb(gdb.db.num_facts());
  for (uint32_t i = 0; i < sg.graph.num_edges(); ++i) edb[gdb.edge_vars[i]] = weights[i];
  auto engine = NaiveEvaluate<TropicalSemiring>(g, edb);
  uint32_t fact = g.FindIdbFact(
      dyck.target_pred, {VertexConst(gdb.db, sg.s), VertexConst(gdb.db, sg.t)});
  uint64_t eng = fact == GroundedProgram::kNotFound ? TropicalSemiring::kInf
                                                    : engine.values[fact];
  std::cout << "Datalog naive evaluation:                        = " << eng << "\n";

  // 3. Ullman-Van Gelder circuit (Theorem 6.2).
  UvgResult uvg = UvgCircuit(g);
  uint64_t circ = fact == GroundedProgram::kNotFound
                      ? TropicalSemiring::kInf
                      : uvg.circuit.Evaluate<TropicalSemiring>(edb)[fact];
  Circuit::Stats stats = uvg.circuit.ComputeStats();
  std::cout << "UVG circuit (" << uvg.stages_used << " stages, size "
            << stats.size << ", depth " << stats.depth << ")        = " << circ
            << "\n";

  if (knuth != eng || eng != circ) {
    std::cerr << "MISMATCH between solvers!\n";
    return 1;
  }
  std::cout << "\nAll three agree. Dyck-1 has the polynomial fringe property,\n"
               "so its circuits have depth O(log^2 m) despite the grammar\n"
               "being infinite (no polynomial-size formula exists: Thm 5.4).\n";
  return 0;
}
