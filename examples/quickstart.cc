// Quickstart: reproduces the paper's running example end to end.
//
//   * Figure 1   — the 6-vertex EDB and the proof trees of T(s,t)
//   * Example 2.3 — the provenance polynomial of T(s,t)
//   * Section 2.3 — evaluation over several semirings
//   * Theorem 3.1 — a provenance circuit, checked symbolically
//   * src/eval/   — the same circuit optimized, compiled to an EvalPlan, and
//                   batch-evaluated under many concurrent taggings
//
// Build & run:  ./build/quickstart
#include <iostream>

#include "src/constructions/grounded_circuit.h"
#include "src/datalog/engine.h"
#include "src/datalog/parser.h"
#include "src/eval/batch.h"
#include "src/eval/evaluator.h"
#include "src/eval/passes.h"
#include "src/provenance/proof_tree.h"
#include "src/semiring/instances.h"
#include "src/semiring/provenance_poly.h"
#include "src/util/rng.h"

using namespace dlcirc;

int main() {
  // The transitive closure program of Example 2.1.
  Result<Program> program_r = ParseProgram(R"(
@target T.
T(X,Y) :- E(X,Y).
T(X,Y) :- T(X,Z), E(Z,Y).
)");
  if (!program_r.ok()) {
    std::cerr << program_r.error() << "\n";
    return 1;
  }
  Program tc = std::move(program_r).value();
  std::cout << "Program (Example 2.1):\n" << tc.ToString() << "\n";

  // The EDB of Figure 1: s->u1, s->u2, u1->v1, u1->v2, u2->v2, v1->t, v2->t.
  Result<Database> db_r = ParseFacts(tc, R"(
E(s,u1). E(s,u2). E(u1,v1). E(u1,v2). E(u2,v2). E(v1,t). E(v2,t).
)");
  Database db = std::move(db_r).value();
  std::cout << "EDB facts (Figure 1a):\n";
  for (uint32_t v = 0; v < db.num_facts(); ++v) {
    std::cout << "  x" << v << " tags " << db.FactToString(tc, v) << "\n";
  }

  // Ground and evaluate symbolically over Sorp(X).
  GroundedProgram g = Ground(tc, db);
  auto sorp = NaiveEvaluate<SorpSemiring>(g, IdentityTagging<SorpSemiring>(db.num_facts()));
  uint32_t s = db.domain().Find("s"), t = db.domain().Find("t");
  uint32_t fact = g.FindIdbFact(tc.target_pred, {s, t});
  std::cout << "\nProvenance polynomial of T(s,t) (Example 2.3):\n  "
            << sorp.values[fact].ToString() << "\n";

  // Tight proof trees (Figure 1c states there are exactly three).
  TightProvenanceResult trees = EnumerateTightProvenance(g, fact);
  std::cout << "Tight proof trees of T(s,t): " << trees.num_trees
            << " (paper: 3)\n";

  // Interpret the same polynomial over different semirings (Section 2.4):
  // Tropical = shortest path if every edge weighs, say, its index + 1.
  std::vector<uint64_t> weights;
  for (uint32_t v = 0; v < db.num_facts(); ++v) weights.push_back(v + 1);
  std::cout << "\nOver the Tropical semiring (edge i weighs i+1):\n"
            << "  min-weight s-t path = "
            << EvalPoly<TropicalSemiring>(sorp.values[fact], weights) << "\n";
  std::vector<bool> bools(db.num_facts(), true);
  std::cout << "Over the Boolean semiring: T(s,t) = "
            << (EvalPoly<BooleanSemiring>(sorp.values[fact], bools) ? "true"
                                                                    : "false")
            << "\n";

  // Theorem 3.1: a polynomial-size circuit for the same polynomial.
  GroundedCircuitResult circuit = GroundedProgramCircuit(g);
  Circuit::Stats stats = circuit.circuit.ComputeStats();
  std::cout << "\nProvenance circuit (Theorem 3.1): size " << stats.size
            << ", depth " << stats.depth << ", " << circuit.layers_used
            << " ICO layers\n";
  Poly from_circuit = circuit.circuit.Evaluate<SorpSemiring>(
      IdentityTagging<SorpSemiring>(db.num_facts()))[fact];
  std::cout << "Circuit evaluates (in Sorp(X)) to:\n  " << from_circuit.ToString()
            << "\n"
            << (from_circuit == sorp.values[fact]
                    ? "MATCHES the provenance polynomial.\n"
                    : "MISMATCH — bug!\n");
  if (from_circuit != sorp.values[fact]) return 1;

  // The eval engine (src/eval/): shrink the circuit once, compile it to a
  // layered plan once, then serve many users' taggings in one batched pass.
  eval::PipelineResult opt = eval::OptimizeForEval(
      circuit.circuit, eval::PassOptions::ForAbsorptive());
  std::cout << "\nEval engine: optimizer pipeline\n";
  for (const eval::PassStats& ps : opt.stats) {
    std::cout << "  " << ps.name << ": arena " << ps.arena_before << " -> "
              << ps.arena_after << ", cone " << ps.gates_after << "\n";
  }
  eval::EvalPlan plan = eval::EvalPlan::Build(opt.circuit);
  std::cout << "  plan: " << plan.num_slots() << " slots in "
            << plan.num_layers() << " layers\n";

  // Eight "users" tag the same EDB with different edge weights; one batched
  // sweep answers all of them. Lane 0 reuses the weights from above.
  eval::Evaluator evaluator;
  std::vector<std::vector<uint64_t>> taggings = {weights};
  Rng rng(2026);
  while (taggings.size() < 8) {
    std::vector<uint64_t> w(db.num_facts());
    for (auto& v : w) v = 1 + rng.NextBounded(9);
    taggings.push_back(w);
  }
  auto batched = eval::EvaluateBatch<TropicalSemiring>(evaluator, plan, taggings);
  std::cout << "  batched Tropical T(s,t) for 8 taggings:";
  bool batch_ok = true;
  for (size_t b = 0; b < taggings.size(); ++b) {
    uint64_t got = batched[b][fact];
    std::cout << " " << got;
    batch_ok = batch_ok &&
               got == circuit.circuit.EvaluateOutput<TropicalSemiring>(
                          taggings[b], fact);
  }
  std::cout << "\n"
            << (batch_ok ? "  every lane MATCHES per-query Evaluate.\n"
                         : "  MISMATCH — bug!\n");
  return batch_ok ? 0 : 1;
}
