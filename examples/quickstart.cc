// Quickstart: reproduces the paper's running example end to end.
//
//   * Figure 1   — the 6-vertex EDB and the proof trees of T(s,t)
//   * Example 2.3 — the provenance polynomial of T(s,t)
//   * Section 2.3 — evaluation over several semirings
//   * Theorem 3.1 — a provenance circuit, checked symbolically
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/constructions/grounded_circuit.h"
#include "src/datalog/engine.h"
#include "src/datalog/parser.h"
#include "src/provenance/proof_tree.h"
#include "src/semiring/instances.h"
#include "src/semiring/provenance_poly.h"

using namespace dlcirc;

int main() {
  // The transitive closure program of Example 2.1.
  Result<Program> program_r = ParseProgram(R"(
@target T.
T(X,Y) :- E(X,Y).
T(X,Y) :- T(X,Z), E(Z,Y).
)");
  if (!program_r.ok()) {
    std::cerr << program_r.error() << "\n";
    return 1;
  }
  Program tc = std::move(program_r).value();
  std::cout << "Program (Example 2.1):\n" << tc.ToString() << "\n";

  // The EDB of Figure 1: s->u1, s->u2, u1->v1, u1->v2, u2->v2, v1->t, v2->t.
  Result<Database> db_r = ParseFacts(tc, R"(
E(s,u1). E(s,u2). E(u1,v1). E(u1,v2). E(u2,v2). E(v1,t). E(v2,t).
)");
  Database db = std::move(db_r).value();
  std::cout << "EDB facts (Figure 1a):\n";
  for (uint32_t v = 0; v < db.num_facts(); ++v) {
    std::cout << "  x" << v << " tags " << db.FactToString(tc, v) << "\n";
  }

  // Ground and evaluate symbolically over Sorp(X).
  GroundedProgram g = Ground(tc, db);
  auto sorp = NaiveEvaluate<SorpSemiring>(g, IdentityTagging<SorpSemiring>(db.num_facts()));
  uint32_t s = db.domain().Find("s"), t = db.domain().Find("t");
  uint32_t fact = g.FindIdbFact(tc.target_pred, {s, t});
  std::cout << "\nProvenance polynomial of T(s,t) (Example 2.3):\n  "
            << sorp.values[fact].ToString() << "\n";

  // Tight proof trees (Figure 1c states there are exactly three).
  TightProvenanceResult trees = EnumerateTightProvenance(g, fact);
  std::cout << "Tight proof trees of T(s,t): " << trees.num_trees
            << " (paper: 3)\n";

  // Interpret the same polynomial over different semirings (Section 2.4):
  // Tropical = shortest path if every edge weighs, say, its index + 1.
  std::vector<uint64_t> weights;
  for (uint32_t v = 0; v < db.num_facts(); ++v) weights.push_back(v + 1);
  std::cout << "\nOver the Tropical semiring (edge i weighs i+1):\n"
            << "  min-weight s-t path = "
            << EvalPoly<TropicalSemiring>(sorp.values[fact], weights) << "\n";
  std::vector<bool> bools(db.num_facts(), true);
  std::cout << "Over the Boolean semiring: T(s,t) = "
            << (EvalPoly<BooleanSemiring>(sorp.values[fact], bools) ? "true"
                                                                    : "false")
            << "\n";

  // Theorem 3.1: a polynomial-size circuit for the same polynomial.
  GroundedCircuitResult circuit = GroundedProgramCircuit(g);
  Circuit::Stats stats = circuit.circuit.ComputeStats();
  std::cout << "\nProvenance circuit (Theorem 3.1): size " << stats.size
            << ", depth " << stats.depth << ", " << circuit.layers_used
            << " ICO layers\n";
  Poly from_circuit = circuit.circuit.Evaluate<SorpSemiring>(
      IdentityTagging<SorpSemiring>(db.num_facts()))[fact];
  std::cout << "Circuit evaluates (in Sorp(X)) to:\n  " << from_circuit.ToString()
            << "\n"
            << (from_circuit == sorp.values[fact]
                    ? "MATCHES the provenance polynomial.\n"
                    : "MISMATCH — bug!\n");
  return from_circuit == sorp.values[fact] ? 0 : 1;
}
