// CLI analyzer: classifies a Datalog program through the paper's lenses.
//
// Reads a program from a file (or uses a built-in demo set), reports the
// Section 2/5/6 syntactic classes, the Theorem 4.6 boundedness
// semi-decision, the exact chain-program decision (Prop 5.5), and the
// consequent circuit-depth regime per the paper's dichotomies.
//
// Build & run:  ./build/examples/boundedness_checker [program.dl]
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/boundedness/boundedness.h"
#include "src/datalog/analysis.h"
#include "src/datalog/parser.h"
#include "src/lang/chain_datalog.h"

using namespace dlcirc;

namespace {

void Analyze(const std::string& name, const std::string& text) {
  std::cout << "=== " << name << " ===\n";
  Result<Program> pr = ParseProgram(text);
  if (!pr.ok()) {
    std::cout << "parse error: " << pr.error() << "\n\n";
    return;
  }
  Program p = std::move(pr).value();
  ProgramAnalysis a = dlcirc::Analyze(p);
  std::cout << "linear: " << (a.is_linear ? "yes" : "no")
            << ", monadic: " << (a.is_monadic ? "yes" : "no")
            << ", basic chain: " << (a.is_basic_chain ? "yes" : "no")
            << ", connected: " << (a.is_connected ? "yes" : "no")
            << ", recursive: " << (a.is_recursive ? "yes" : "no") << "\n";

  if (a.is_basic_chain) {
    Result<BoundednessReport> chain = CheckBoundednessChain(p);
    if (chain.ok()) {
      bool bounded =
          chain.value().verdict == BoundednessReport::Verdict::kBounded;
      std::cout << "chain decision (Prop 5.5, exact): "
                << (bounded ? "BOUNDED (finite CFG)" : "UNBOUNDED (infinite CFG)")
                << "\n";
      std::cout << "=> circuit depth regime (Thm 5.3): "
                << (bounded ? "Theta(log m), poly-size formulas"
                            : "Theta(log^2 m) [regular] / O(log^2 m) if poly "
                              "fringe; superpolynomial formulas")
                << "\n";
    }
  }
  BoundednessReport chom = CheckBoundednessChom(p);
  switch (chom.verdict) {
    case BoundednessReport::Verdict::kBounded:
      std::cout << "Chom semi-decision (Thm 4.6): BOUNDED with N = "
                << chom.bound << " (UCQ-equivalent, Prop 4.8)\n";
      break;
    case BoundednessReport::Verdict::kNoBoundFound:
      std::cout << "Chom semi-decision (Thm 4.6): no bound up to horizon"
                << (chom.horizon_limited ? " (horizon-limited)" : "") << "\n";
      break;
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    Analyze(argv[1], ss.str());
    return 0;
  }
  Analyze("transitive closure (Example 2.1)", R"(
@target T.
T(X,Y) :- E(X,Y).
T(X,Y) :- T(X,Z), E(Z,Y).
)");
  Analyze("bounded program (Example 4.2)", R"(
@target T.
T(X,Y) :- E(X,Y).
T(X,Y) :- A(X), T(Z,Y).
)");
  Analyze("Dyck-1 (Example 6.4)", R"(
@target S.
S(X,Y) :- L(X,Z), R(Z,Y).
S(X,Y) :- L(X,W), S(W,Z), R(Z,Y).
S(X,Y) :- S(X,Z), S(Z,Y).
)");
  Analyze("finite chain {a, ab}", R"(
@target T.
T(X,Y) :- A(X,Y).
T(X,Y) :- A(X,Z), B(Z,Y).
)");
  Analyze("monadic reachability (Example 2.1)", R"(
@target U.
U(X) :- A(X).
U(X) :- U(Y), E(X,Y).
)");
  return 0;
}
