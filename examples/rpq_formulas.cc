// Domain example: the RPQ dichotomy (Theorems 5.3/5.4) made tangible.
//
// Two regular path queries over an edge-labeled graph:
//   finite language  {a, ab}   -> O(log n)-depth circuit, poly-size formula
//   infinite language a b*     -> Theta(log^2 n) circuit, formula blow-up
// The example prints circuit depths, expands both circuits into formulas
// (Prop 3.3) and rebalances the finite one with the absorptive Spira
// transformation (Thm 3.2 analogue).
//
// Build & run:  ./build/examples/rpq_formulas [n]
#include <cstdlib>
#include <iostream>

#include "src/circuit/spira.h"
#include "src/constructions/finite_rpq_circuit.h"
#include "src/constructions/reductions.h"
#include "src/datalog/parser.h"
#include "src/graph/generators.h"
#include "src/lang/chain_datalog.h"
#include "src/semiring/instances.h"

using namespace dlcirc;

int main(int argc, char** argv) {
  uint32_t n = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 24;
  Rng rng(11);
  StGraph sg = RandomGraph(n, 4 * n, 2, rng);
  std::vector<uint32_t> vars(sg.graph.num_edges());
  for (uint32_t i = 0; i < vars.size(); ++i) vars[i] = i;
  uint32_t nv = static_cast<uint32_t>(vars.size());
  std::cout << "Labeled graph: n=" << n << " m=" << sg.graph.num_edges() << "\n\n";

  // Finite RPQ {a, ab}.
  Nfa fin;
  fin.num_states = 3;
  fin.num_labels = 2;
  fin.start = 0;
  fin.accept = {false, true, true};
  fin.transitions = {{0, 0, 1}, {1, 1, 2}};
  Dfa fin_dfa = Dfa::Determinize(fin);
  Circuit fin_circuit =
      FiniteRpqCircuit(sg.graph, vars, nv, fin_dfa, sg.s, sg.t).value();
  std::cout << "RPQ L = {a, ab} (finite => bounded => Theta(log n) depth):\n"
            << "  circuit size " << fin_circuit.Size() << ", depth "
            << fin_circuit.Depth() << ", formula expansion "
            << fin_circuit.FormulaSizes()[0].ToString() << " nodes\n";
  Result<Formula> fin_formula = CircuitToFormula(fin_circuit, 0, 1u << 22);
  if (fin_formula.ok()) {
    SpiraResult balanced = BalanceFormulaAbsorptive(fin_formula.value());
    std::cout << "  Spira-balanced formula: size " << balanced.balanced_size
              << ", depth " << balanced.balanced_depth << " (was depth "
              << balanced.original_depth << ")\n";
  }

  // Infinite RPQ a b* via the product reduction (Theorem 5.9).
  Program ab = ParseProgram(R"(
@target T.
T(X,Y) :- A(X,Y).
T(X,Y) :- T(X,Z), B(Z,Y).
)").value();
  Dfa inf_dfa = Dfa::Determinize(LeftLinearChainToNfa(ab).value().nfa);
  Circuit inf_circuit =
      RpqViaProductCircuit(sg.graph, vars, nv, inf_dfa, sg.s, sg.t);
  std::cout << "\nRPQ L = a b* (infinite => unbounded => Theta(log^2 n) depth):\n"
            << "  circuit size " << inf_circuit.Size() << ", depth "
            << inf_circuit.Depth() << ", formula expansion "
            << inf_circuit.FormulaSizes()[0].ToString() << " nodes\n";

  std::cout << "\nThe finite language expands to a small formula; the infinite\n"
               "one explodes — the formula-size dichotomy of Theorem 5.3.\n";
  return 0;
}
