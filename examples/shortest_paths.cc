// Domain example: tropical provenance = shortest paths.
//
// Builds a random weighted road-network-like graph, compares three circuit
// constructions for the TC provenance of T(s,t) (Theorems 5.6 and 5.7)
// against the classical Bellman-Ford baseline, and shows the size/depth
// trade-off the paper's Table 1 row "infinite regular" describes.
//
// Build & run:  ./build/examples/shortest_paths [n] [m] [seed]
#include <cstdlib>
#include <iostream>

#include "src/constructions/path_circuits.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/semiring/instances.h"
#include "src/util/table.h"

using namespace dlcirc;

int main(int argc, char** argv) {
  uint32_t n = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 40;
  uint32_t m = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 160;
  uint64_t seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 7;
  Rng rng(seed);
  StGraph sg = RandomGraph(n, m, 1, rng);
  std::vector<uint64_t> weights = RandomWeights(sg.graph, 100, rng);
  std::cout << "Random graph: n=" << n << " m=" << sg.graph.num_edges()
            << " seed=" << seed << "\n\n";

  uint64_t baseline = BellmanFordDistances(sg.graph, weights, sg.s)[sg.t];
  std::cout << "Bellman-Ford baseline distance s->t: "
            << (baseline == TropicalSemiring::kInf ? "unreachable"
                                                   : std::to_string(baseline))
            << "\n\n";

  Table table({"construction", "paper bound", "size", "depth", "tropical value"});
  auto report = [&](const std::string& name, const std::string& bound,
                    const Circuit& c) {
    Circuit::Stats s = c.ComputeStats();
    uint64_t v = c.EvaluateOutput<TropicalSemiring>(weights);
    table.AddRow({name, bound, Table::Fmt(s.size), Table::Fmt(s.depth),
                  v == TropicalSemiring::kInf ? "inf" : Table::Fmt(v)});
    if (v != baseline) {
      std::cerr << "MISMATCH in " << name << "\n";
      std::exit(1);
    }
  };
  report("Bellman-Ford circuit (Thm 5.6)", "O(mn) size, O(n log n) depth",
         BellmanFordCircuitIdentity(sg));
  report("repeated squaring (Thm 5.7)", "O(n^3 log n) size, O(log^2 n) depth",
         RepeatedSquaringCircuitIdentity(sg));
  table.Print(std::cout);
  std::cout << "\nBoth circuits compute the same provenance polynomial; the\n"
               "squaring circuit trades a larger size for exponentially\n"
               "smaller depth (parallel evaluation), as in the paper.\n";
  return 0;
}
